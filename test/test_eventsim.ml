(* Tests for the discrete-event engine and timers. *)

open Cm_util
open Eventsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let test_runs_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_at e (Time.ms 30) (fun () -> log := 3 :: !log));
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule_at e (Time.ms 20) (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e (Time.ms 10) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> seen := Engine.now e :: !seen));
  ignore (Engine.schedule_at e (Time.ms 25) (fun () -> seen := Engine.now e :: !seen));
  Engine.run e;
  Alcotest.(check (list int)) "now equals event times" [ Time.ms 10; Time.ms 25 ] (List.rev !seen)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> incr fired));
  ignore (Engine.schedule_at e (Time.ms 50) (fun () -> incr fired));
  Engine.run ~until:(Time.ms 20) e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "clock at limit" (Time.ms 20) (Engine.now e);
  Alcotest.(check int) "second pending" 1 (Engine.pending e)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time.ms 10) (fun () -> fired := true) in
  "cancel returns true" => Engine.cancel e h;
  "double cancel returns false" => not (Engine.cancel e h);
  Engine.run e;
  "cancelled event did not fire" => not !fired

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> ()));
  Engine.run e;
  "scheduling in the past raises"
  => (try
        ignore (Engine.schedule_at e (Time.ms 5) (fun () -> ()));
        false
      with Invalid_argument _ -> true)

let test_events_schedule_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then begin
      incr count;
      ignore (Engine.schedule_after e (Time.ms 1) (fun () -> chain (n - 1)))
    end
  in
  ignore (Engine.schedule_after e 0 (fun () -> chain 10));
  Engine.run e;
  Alcotest.(check int) "chained events all ran" 10 !count;
  Alcotest.(check int) "clock advanced by chain" (Time.ms 10) (Engine.now e)

let test_step_and_counters () =
  let e = Engine.create () in
  ignore (Engine.schedule_after e (Time.ms 1) (fun () -> ()));
  ignore (Engine.schedule_after e (Time.ms 2) (fun () -> ()));
  "step executes one" => Engine.step e;
  Alcotest.(check int) "one pending left" 1 (Engine.pending e);
  "step executes the other" => Engine.step e;
  "step on empty returns false" => not (Engine.step e);
  Alcotest.(check int) "executed count" 2 (Engine.events_executed e)

let test_reschedule () =
  let e = Engine.create () in
  let fired_at = ref [] in
  let h = Engine.schedule_at e (Time.ms 10) (fun () -> fired_at := Engine.now e :: !fired_at) in
  "reschedule live event" => Engine.reschedule e h (Time.ms 30);
  ignore (Engine.schedule_at e (Time.ms 20) (fun () -> fired_at := Engine.now e :: !fired_at));
  Engine.run e;
  Alcotest.(check (list int))
    "rescheduled event fired at new time, after the other"
    [ Time.ms 20; Time.ms 30 ]
    (List.rev !fired_at);
  "reschedule after firing returns false" => not (Engine.reschedule e h (Time.ms 40))

let test_reschedule_cancelled_returns_false () =
  let e = Engine.create () in
  let h = Engine.schedule_at e (Time.ms 10) (fun () -> ()) in
  ignore (Engine.cancel e h);
  "reschedule of cancelled handle fails" => not (Engine.reschedule e h (Time.ms 20));
  Engine.run e;
  Alcotest.(check int) "nothing executed" 0 (Engine.events_executed e)

let test_stale_handle_after_reuse () =
  (* event cells are pooled: after an event fires, the next schedule
     recycles its cell.  A handle to the fired event must stay inert —
     cancel/reschedule return false and must not touch the new tenant. *)
  let e = Engine.create () in
  let fired = ref [] in
  let h1 = Engine.schedule_at e (Time.ms 10) (fun () -> fired := 1 :: !fired) in
  Engine.run e;
  let _h2 = Engine.schedule_at e (Time.ms 20) (fun () -> fired := 2 :: !fired) in
  "cancel of fired handle is inert" => not (Engine.cancel e h1);
  "reschedule of fired handle is inert" => not (Engine.reschedule e h1 (Time.ms 99));
  Engine.run e;
  Alcotest.(check (list int)) "both events fired, reused cell unharmed" [ 2; 1 ] !fired

let test_clamped_counter () =
  let e = Engine.create () in
  Alcotest.(check int) "starts at zero" 0 (Engine.schedules_clamped e);
  ignore (Engine.schedule_after e (Time.ms (-5)) (fun () -> ()));
  ignore (Engine.schedule_after e (Time.ms (-1)) (fun () -> ()));
  ignore (Engine.schedule_after e (Time.ms 1) (fun () -> ()));
  Alcotest.(check int) "two negative delays clamped" 2 (Engine.schedules_clamped e);
  Engine.run e;
  Alcotest.(check int) "clamped events still run" 3 (Engine.events_executed e)

let test_lazy_cancel_pending () =
  let e = Engine.create () in
  let handles =
    List.init 10 (fun i -> Engine.schedule_at e (Time.ms (i + 1)) (fun () -> ()))
  in
  List.iteri (fun i h -> if i mod 2 = 0 then ignore (Engine.cancel e h)) handles;
  (* lazy cancellation leaves dead entries in the heap, but [pending] must
     report only live events *)
  Alcotest.(check int) "pending counts live events only" 5 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "only live events executed" 5 (Engine.events_executed e);
  Alcotest.(check int) "none pending after run" 0 (Engine.pending e)

let test_run_for () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule_at e (Time.ms 100) (fun () -> incr fired));
  Engine.run_for e (Time.ms 50);
  Alcotest.(check int) "not yet" 0 !fired;
  Engine.run_for e (Time.ms 60);
  Alcotest.(check int) "fired in second window" 1 !fired

(* ---- Timer ---------------------------------------------------------- *)

let test_timer_fires_once () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.create e ~callback:(fun () -> incr fired) in
  Timer.start t (Time.ms 5);
  "running" => Timer.is_running t;
  Engine.run e;
  Alcotest.(check int) "fired once" 1 !fired;
  "stopped after expiry" => not (Timer.is_running t)

let test_timer_restart_replaces () =
  let e = Engine.create () in
  let fired_at = ref [] in
  let t = Timer.create e ~callback:(fun () -> fired_at := Engine.now e :: !fired_at) in
  Timer.start t (Time.ms 5);
  Timer.start t (Time.ms 20);
  Engine.run e;
  Alcotest.(check (list int)) "only the re-armed expiry fired" [ Time.ms 20 ] !fired_at

let test_timer_stop () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Timer.create e ~callback:(fun () -> fired := true) in
  Timer.start t (Time.ms 5);
  Timer.stop t;
  Engine.run e;
  "stopped timer silent" => not !fired

let test_timer_periodic () =
  let e = Engine.create () in
  let count = ref 0 in
  let t = Timer.create e ~callback:(fun () -> incr count) in
  Timer.start_periodic t (Time.ms 10);
  Engine.run ~until:(Time.ms 55) e;
  Alcotest.(check int) "five ticks in 55ms" 5 !count;
  Timer.stop t;
  Engine.run ~until:(Time.ms 200) e;
  Alcotest.(check int) "no ticks after stop" 5 !count

let test_timer_callback_can_rearm () =
  let e = Engine.create () in
  let count = ref 0 in
  let t_ref = ref None in
  let t =
    Timer.create e ~callback:(fun () ->
        incr count;
        if !count < 3 then
          match !t_ref with Some t -> Timer.start t (Time.ms 1) | None -> ())
  in
  t_ref := Some t;
  Timer.start t (Time.ms 1);
  Engine.run e;
  Alcotest.(check int) "self-rearming chain" 3 !count

let test_timer_expiry_visible () =
  let e = Engine.create () in
  let t = Timer.create e ~callback:(fun () -> ()) in
  "no expiry when idle" => (Timer.expiry t = None);
  Timer.start t (Time.ms 7);
  Alcotest.(check (option int)) "expiry time" (Some (Time.ms 7)) (Timer.expiry t)


(* ---- Sim_log --------------------------------------------------------- *)

let test_sim_log_stamps_virtual_time () =
  let e = Engine.create () in
  Sim_log.setup e ~level:Logs.Debug ();
  (* capture through a custom reporter stacked on top *)
  let captured = ref [] in
  let report _src _lvl ~over k msgf =
    let k _ = over (); k () in
    msgf (fun ?header:_ ?tags:_ fmt ->
        Format.kasprintf
          (fun s ->
            captured := (Engine.now e, s) :: !captured;
            k "")
          fmt)
  in
  Logs.set_reporter { Logs.report };
  let src = Sim_log.src "test" in
  ignore (Engine.schedule_at e (Time.ms 250) (fun () ->
      Logs.debug ~src (fun m -> m "hello at %d" 250)));
  Engine.run e;
  (match !captured with
  | [ (at, msg) ] ->
      Alcotest.(check int) "captured at virtual time" (Time.ms 250) at;
      Alcotest.(check string) "message body" "hello at 250" msg
  | l -> Alcotest.fail (Printf.sprintf "expected one message, got %d" (List.length l)));
  Logs.set_reporter Logs.nop_reporter

let test_sim_log_src_memoized () =
  "same source returned" => (Sim_log.src "cm" == Sim_log.src "cm");
  "different names differ" => (Sim_log.src "cm" != Sim_log.src "tcp")

(* the real reporter, captured through [?ppf]: lines are stamped with the
   engine's virtual clock, not wall time *)
let test_sim_log_reporter_virtual_stamp () =
  let e = Engine.create () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Sim_log.setup e ~level:Logs.Debug ~ppf ();
  let src = Sim_log.src "test" in
  ignore
    (Engine.schedule_at e (Time.ms 250) (fun () -> Logs.debug ~src (fun m -> m "tick")));
  Engine.run e;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let stamp = Format.asprintf "[%a]" Time.pp (Time.ms 250) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  "stamped with virtual time" => contains out stamp;
  "message body present" => contains out "tick";
  Logs.set_reporter Logs.nop_reporter

(* messages below the configured level never reach the sink *)
let test_sim_log_level_filtering () =
  let e = Engine.create () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Sim_log.setup e ~level:Logs.Warning ~ppf ();
  let src = Sim_log.src "test" in
  Logs.debug ~src (fun m -> m "suppressed debug");
  Logs.info ~src (fun m -> m "suppressed info");
  Format.pp_print_flush ppf ();
  "below-level messages suppressed" => (Buffer.length buf = 0);
  Logs.warn ~src (fun m -> m "visible warning");
  Format.pp_print_flush ppf ();
  "at-level message delivered" => (Buffer.length buf > 0);
  Logs.set_reporter Logs.nop_reporter

(* ---- profiler / escape hook / occupancy stats ------------------------- *)

let test_prof_counts_dispatches () =
  let e = Engine.create () in
  Engine.enable_prof e;
  "prof armed" => Engine.prof_enabled e;
  for i = 1 to 10 do
    ignore (Engine.schedule_at e (Time.ms i) (Engine.prof_tag e ~cat:"cm" (fun () -> ())))
  done;
  ignore (Engine.schedule_at e (Time.ms 20) (fun () -> ()));
  Engine.run e;
  match Engine.prof_report e with
  | None -> Alcotest.fail "no prof report"
  | Some r ->
      Alcotest.(check int) "total dispatches" 11 r.Engine.pr_dispatches;
      let count name =
        match List.find_opt (fun c -> c.Engine.pc_name = name) r.Engine.pr_categories with
        | Some c -> c.Engine.pc_dispatches
        | None -> 0
      in
      Alcotest.(check int) "cm-tagged" 10 (count "cm");
      Alcotest.(check int) "untagged fall in other" 1 (count "other");
      (* per-category counts always sum to the total: exact, not sampled *)
      let sum =
        List.fold_left (fun acc c -> acc + c.Engine.pc_dispatches) 0 r.Engine.pr_categories
      in
      Alcotest.(check int) "categories sum to total" r.Engine.pr_dispatches sum

let test_prof_tag_identity_when_off () =
  let e = Engine.create () in
  let f () = () in
  "prof_tag is physically the identity on an unprofiled engine"
  => (Engine.prof_tag e ~cat:"cm" f == f)

let test_escape_hook_fires_and_reraises () =
  let e = Engine.create () in
  let seen = ref None in
  Engine.set_escape_hook e (Some (fun exn -> seen := Some (Printexc.to_string exn)));
  ignore (Engine.schedule_at e (Time.ms 1) (fun () -> failwith "boom"));
  (try
     Engine.run e;
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "reraised" "boom" m);
  (match !seen with
  | Some s -> "hook saw the exception" => (s <> "")
  | None -> Alcotest.fail "escape hook never fired")

let test_pool_and_queue_stats () =
  let e = Engine.create () in
  for i = 1 to 50 do
    ignore (Engine.schedule_at e (Time.ms i) (fun () -> ()))
  done;
  let st = Engine.queue_stats e in
  Alcotest.(check int) "live size" 50 st.Wheel.size_now;
  "high-water tracks the burst" => (st.Wheel.hw_size >= 50);
  Engine.run e;
  let st = Engine.queue_stats e in
  Alcotest.(check int) "drained" 0 st.Wheel.size_now;
  "pool high-water recorded" => (Engine.pool_hw e > 0)

(* ---- stress ----------------------------------------------------------- *)

let test_engine_million_events () =
  let e = Engine.create () in
  let rng = Cm_util.Rng.create ~seed:1 in
  let count = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 1_000_000 do
    ignore
      (Engine.schedule_at e (Cm_util.Rng.int rng 1_000_000_000) (fun () -> incr count))
  done;
  Engine.run e;
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all ran" 1_000_000 !count;
  Alcotest.(check int) "executed counter" 1_000_000 (Engine.events_executed e);
  "a million events under 10s wall" => (wall < 10.)

let prop_engine_order =
  QCheck.Test.make ~name:"engine executes any schedule in sorted order" ~count:100
    QCheck.(list (int_bound 1000))
    (fun delays ->
      let e = Engine.create () in
      let out = ref [] in
      List.iter
        (fun d -> ignore (Engine.schedule_at e (Time.us d) (fun () -> out := d :: !out)))
        delays;
      Engine.run e;
      List.rev !out = List.stable_sort Stdlib.compare delays)

(* The wheel backend must be observationally identical to the heap
   backend: drive both engines through the same randomized program —
   schedules on both sides of the ~16.8 ms wheel horizon (so entries
   land in the current slot, wheel slots, and the overflow heap, and
   migrate across on cursor advance), cancels, reschedules, bounded runs
   (which exercise cell reuse/reinsertion from the pool) — and require
   identical execution sequences, identical cancel/reschedule results,
   and identical clocks. *)
let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel engine pop sequence = heap engine pop sequence" ~count:80
    QCheck.(list (triple (int_bound 5) (int_bound 3_000) small_nat))
    (fun ops ->
      let ew = Engine.create ~wheel:true () in
      let eh = Engine.create ~wheel:false () in
      let logw = ref [] and logh = ref [] in
      let hs = ref [] in
      let nth k = match !hs with [] -> None | l -> List.nth_opt l (k mod List.length l) in
      let id = ref 0 in
      List.iter
        (fun (op, t, k) ->
          match op with
          | 0 | 1 | 2 ->
              (* offsets up to 60 ms: ~3.6x the horizon *)
              let when_ = Time.add (Engine.now ew) (Time.us (t * 20)) in
              let i = !id in
              incr id;
              let hw = Engine.schedule_at ew when_ (fun () -> logw := i :: !logw) in
              let hh = Engine.schedule_at eh when_ (fun () -> logh := i :: !logh) in
              hs := (hw, hh) :: !hs
          | 3 -> (
              match nth k with
              | Some (hw, hh) ->
                  if Engine.cancel ew hw <> Engine.cancel eh hh then
                    failwith "cancel result mismatch"
              | None -> ())
          | 4 -> (
              match nth k with
              | Some (hw, hh) ->
                  let when_ = Time.add (Engine.now ew) (Time.us (t * 20)) in
                  if Engine.reschedule ew hw when_ <> Engine.reschedule eh hh when_ then
                    failwith "reschedule result mismatch"
              | None -> ())
          | _ ->
              let d = Time.us (t * 5) in
              Engine.run_for ew d;
              Engine.run_for eh d;
              if Engine.now ew <> Engine.now eh then failwith "clock mismatch")
        ops;
      Engine.run ew;
      Engine.run eh;
      List.rev !logw = List.rev !logh && Engine.now ew = Engine.now eh)

let test_pool_shrinks_after_burst () =
  let e = Engine.create () in
  (* burst: 10k simultaneously-outstanding events *)
  for i = 1 to 10_000 do
    ignore (Engine.schedule_at e (Time.us i) ignore)
  done;
  Engine.run e;
  Alcotest.(check int) "burst executed" 10_000 (Engine.events_executed e);
  (* draining the burst must not retain its peak: the free list is capped
     at max 64 (queued events), and the queue is now empty *)
  "pool shrank to the floor after the burst" => (Engine.pool_size e <= 64);
  (* cells still recycle in steady state *)
  ignore (Engine.schedule_after e (Time.us 1) ignore);
  Engine.run e;
  "pool still bounded in steady state" => (Engine.pool_size e <= 64)

let () =
  Alcotest.run "eventsim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_runs_in_time_order;
          Alcotest.test_case "fifo ties" `Quick test_fifo_at_same_time;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "past rejected" `Quick test_schedule_in_past_rejected;
          Alcotest.test_case "events schedule events" `Quick test_events_schedule_events;
          Alcotest.test_case "step and counters" `Quick test_step_and_counters;
          Alcotest.test_case "reschedule" `Quick test_reschedule;
          Alcotest.test_case "reschedule cancelled" `Quick test_reschedule_cancelled_returns_false;
          Alcotest.test_case "stale handle after cell reuse" `Quick
            test_stale_handle_after_reuse;
          Alcotest.test_case "clamped counter" `Quick test_clamped_counter;
          Alcotest.test_case "lazy cancel pending" `Quick test_lazy_cancel_pending;
          Alcotest.test_case "run_for windows" `Quick test_run_for;
          QCheck_alcotest.to_alcotest prop_engine_order;
          QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
          Alcotest.test_case "pool shrinks after burst" `Quick test_pool_shrinks_after_burst;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fires once" `Quick test_timer_fires_once;
          Alcotest.test_case "restart replaces" `Quick test_timer_restart_replaces;
          Alcotest.test_case "stop" `Quick test_timer_stop;
          Alcotest.test_case "periodic" `Quick test_timer_periodic;
          Alcotest.test_case "callback can re-arm" `Quick test_timer_callback_can_rearm;
          Alcotest.test_case "expiry visible" `Quick test_timer_expiry_visible;
        ] );
      ( "sim_log",
        [
          Alcotest.test_case "virtual-time stamps" `Quick test_sim_log_stamps_virtual_time;
          Alcotest.test_case "memoized sources" `Quick test_sim_log_src_memoized;
          Alcotest.test_case "reporter stamps virtual clock" `Quick
            test_sim_log_reporter_virtual_stamp;
          Alcotest.test_case "level filtering suppresses" `Quick test_sim_log_level_filtering;
        ] );
      ( "prof",
        [
          Alcotest.test_case "exact per-category dispatch counts" `Quick
            test_prof_counts_dispatches;
          Alcotest.test_case "prof_tag identity when off" `Quick test_prof_tag_identity_when_off;
          Alcotest.test_case "escape hook fires and reraises" `Quick
            test_escape_hook_fires_and_reraises;
          Alcotest.test_case "pool and wheel occupancy stats" `Quick test_pool_and_queue_stats;
        ] );
      ( "stress",
        [ Alcotest.test_case "a million events" `Slow test_engine_million_events ]);
    ]
