(* Tests for the run-health analyzer (lib/report): bottleneck
   attribution, stall-window detection, Jain fairness, drop-cause
   totals, layer-flap scoring, verdict thresholds, and the deterministic
   JSON/markdown rendering. *)

open Cm_util
open Cm_report

let ( => ) name b = Alcotest.(check bool) name true b
let feq name a b = Alcotest.(check (float 1e-9)) name a b

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A hand-built 10-tick run with known pathologies:
   - mf0: congestion-window-bound for the first half (pipe at 90% of
     cwnd), then grant-starved (requests pending, nothing granted);
     tick 2 is overridden by a queue-drop burst on the forward link.
   - mf1: unconstrained but stalled (zero rate) for ticks 3..8.
   - four layer switches, two of them direction reversals, in 1 s. *)
let synthetic_input () =
  let times = Array.init 10 (fun i -> 0.1 *. float_of_int (i + 1)) in
  let const v = Array.make 10 v in
  let ev ms from to_ =
    {
      Telemetry.Trace.ts = Time.ms ms;
      phase = Telemetry.Trace.Instant;
      name = "app.layer";
      cat = "app";
      args = [ ("from", Telemetry.Trace.Int from); ("to", Telemetry.Trace.Int to_) ];
    }
  in
  {
    Analyze.i_times = times;
    i_series =
      [
        ("mf0.cwnd", const 10_000.);
        ("mf0.pipe", Array.init 10 (fun i -> if i < 5 then 9_000. else 0.));
        ("mf0.pending", Array.init 10 (fun i -> if i < 5 then 0. else 1.));
        ("mf0.granted", const 0.);
        ("mf0.rate_bps", const 1_000.);
        ("mf1.cwnd", const 10_000.);
        ("mf1.rate_bps", Array.init 10 (fun i -> if i >= 3 && i <= 8 then 0. else 1_000.));
        ("link.fwd.drops_queue", Array.init 10 (fun i -> if i < 2 then 0. else 5.));
      ];
    i_scalars =
      [
        ("link.fwd.drops_queue", 5.);
        ("link.fwd.drops_down", 0.);
        ("link.fwd.delivered_pkts", 200.);
      ];
    i_events = [ ev 100 0 1; ev 300 1 2; ev 500 2 1; ev 700 1 2 ];
    i_duration_s = 1.0;
    i_period_s = 0.1;
  }

let attribution flow cause =
  match List.assoc_opt cause flow.Analyze.f_attribution with
  | Some x -> x
  | None -> Alcotest.fail ("no attribution bucket " ^ cause)

let flow r name =
  match List.find_opt (fun f -> f.Analyze.f_name = name) r.Analyze.r_flows with
  | Some f -> f
  | None -> Alcotest.fail ("flow missing from report: " ^ name)

let test_attribution () =
  let r = Analyze.analyze (synthetic_input ()) in
  Alcotest.(check int) "both flows found" 2 (List.length r.Analyze.r_flows);
  let f0 = flow r "mf0" in
  feq "mf0 cwnd-limited 4/10" 0.4 (attribution f0 "cwnd_limited");
  feq "mf0 grant-limited 5/10" 0.5 (attribution f0 "grant_limited");
  feq "mf0 queue-limited 1/10" 0.1 (attribution f0 "queue_limited");
  feq "mf0 never link-down" 0. (attribution f0 "link_down");
  let f1 = flow r "mf1" in
  feq "mf1 unconstrained 9/10" 0.9 (attribution f1 "unconstrained");
  feq "mf1 queue tick shared" 0.1 (attribution f1 "queue_limited")

let test_stalls_and_fairness () =
  let r = Analyze.analyze (synthetic_input ()) in
  let f1 = flow r "mf1" in
  (match f1.Analyze.f_stall_windows with
  | [ (a, b) ] ->
      feq "stall starts at first zero tick" 0.4 a;
      feq "stall ends at last zero tick" 0.9 b
  | l -> Alcotest.fail (Printf.sprintf "expected 1 stall window, got %d" (List.length l)));
  feq "stall fraction" 0.6 f1.Analyze.f_stall_frac;
  let f0 = flow r "mf0" in
  "steady flow never stalls" => (f0.Analyze.f_stall_windows = []);
  (* mean rates 1000 vs 400 -> Jain (1400)^2 / (2 * 1.16e6) *)
  feq "jain index" (1400. *. 1400. /. (2. *. 1_160_000.)) r.Analyze.r_jain

let test_flaps_and_drops () =
  let r = Analyze.analyze (synthetic_input ()) in
  Alcotest.(check int) "switches counted" 4 r.Analyze.r_layer_switches;
  Alcotest.(check int) "reversals counted" 2 r.Analyze.r_layer_reversals;
  feq "flaps per second" 2.0 r.Analyze.r_flap_per_s;
  let d k = List.assoc k r.Analyze.r_drops in
  Alcotest.(check int) "queue drops" 5 (d "queue");
  Alcotest.(check int) "down drops" 0 (d "down");
  Alcotest.(check int) "delivered" 200 (d "delivered_pkts")

let test_verdicts () =
  let r = Analyze.analyze (synthetic_input ()) in
  let status check =
    match List.find_opt (fun v -> v.Analyze.v_check = check) r.Analyze.r_verdicts with
    | Some v -> v.Analyze.v_status
    | None -> Alcotest.fail ("verdict missing: " ^ check)
  in
  "stalls warn (0.6 > 0.1)" => (status "stalls" = Analyze.Warn);
  "fairness warn (0.845 < 0.85)" => (status "fairness" = Analyze.Warn);
  "flaps warn (2/s > 1)" => (status "flaps" = Analyze.Warn);
  "down drops pass" => (status "down_drops" = Analyze.Pass);
  "queue drops pass (2.5% of delivered)" => (status "queue_drops" = Analyze.Pass);
  "grant starvation pass (0.5 at threshold)" => (status "grant_starvation" = Analyze.Pass);
  "overall rolls up to warn" => (r.Analyze.r_overall = Analyze.Warn)

let test_healthy_run_passes () =
  let input =
    {
      (synthetic_input ()) with
      Analyze.i_series =
        [
          ("mf0.cwnd", Array.make 10 10_000.);
          ("mf0.rate_bps", Array.make 10 1_000.);
          ("mf1.cwnd", Array.make 10 10_000.);
          ("mf1.rate_bps", Array.make 10 1_000.);
        ];
      i_events = [];
    }
  in
  let r = Analyze.analyze input in
  "healthy run passes overall" => (r.Analyze.r_overall = Analyze.Pass);
  feq "perfect fairness" 1.0 r.Analyze.r_jain

let test_rendering_deterministic_and_parseable () =
  let render () = Json.to_string (Analyze.to_json (Analyze.analyze (synthetic_input ()))) in
  let a = render () and b = render () in
  Alcotest.(check string) "twice-rendered identical" a b;
  (match Json.parse a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("report JSON does not parse: " ^ e));
  let md = Analyze.to_markdown (Analyze.analyze (synthetic_input ())) in
  "markdown names the flows" => (contains md "mf0" && contains md "mf1");
  "markdown carries the verdict table" => contains md "| stalls | warn |";
  "markdown states overall" => contains md "**Overall: warn**"

let test_of_telemetry_smoke () =
  (* a real (tiny) instrumented run flows through the same pipeline *)
  let tels = Experiments.Trace_run.capture ~expt:"scenario_outage" ~seed:7 in
  let input = Analyze.of_telemetry (List.hd tels) in
  "sampler ticks captured" => (Array.length input.Analyze.i_times > 10);
  "series captured" => (input.Analyze.i_series <> []);
  "duration positive" => (input.Analyze.i_duration_s > 0.);
  let r = Analyze.analyze input in
  "found at least one flow" => (r.Analyze.r_flows <> []);
  let s1 = Json.to_string (Analyze.to_json r) in
  let s2 =
    Json.to_string
      (Analyze.to_json
         (Analyze.analyze (Analyze.of_telemetry (List.hd (Experiments.Trace_run.capture ~expt:"scenario_outage" ~seed:7)))))
  in
  Alcotest.(check string) "end-to-end byte-identical for the same seed" s1 s2

let () =
  Alcotest.run "report"
    [
      ( "analyze",
        [
          Alcotest.test_case "bottleneck attribution" `Quick test_attribution;
          Alcotest.test_case "stalls and fairness" `Quick test_stalls_and_fairness;
          Alcotest.test_case "flaps and drop totals" `Quick test_flaps_and_drops;
          Alcotest.test_case "verdict thresholds" `Quick test_verdicts;
          Alcotest.test_case "healthy run passes" `Quick test_healthy_run_passes;
        ] );
      ( "render",
        [
          Alcotest.test_case "deterministic + parseable" `Quick
            test_rendering_deterministic_and_parseable;
          Alcotest.test_case "of_telemetry end to end" `Quick test_of_telemetry_smoke;
        ] );
    ]
