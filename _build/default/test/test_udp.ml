(* Tests for the UDP substrate: sockets, the feedback (app-level ack)
   protocol, and congestion-controlled UDP sockets. *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let make () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e7 ~delay:(Time.ms 5) () in
  (engine, net)

(* ---- Socket ----------------------------------------------------------- *)

let test_socket_roundtrip () =
  let engine, net = make () in
  let server = Udp.Socket.create net.Topology.b ~port:53 () in
  let got = ref 0 in
  Udp.Socket.on_receive server (fun pkt -> got := Packet.payload_bytes pkt);
  let client = Udp.Socket.create net.Topology.a () in
  Udp.Socket.sendto client ~dst:(Addr.endpoint ~host:1 ~port:53) ~payload_bytes:321
    (Packet.Raw 321);
  Engine.run engine;
  Alcotest.(check int) "payload delivered" 321 !got;
  Alcotest.(check int) "tx counted" 1 (Udp.Socket.packets_sent client);
  Alcotest.(check int) "rx counted" 1 (Udp.Socket.packets_received server)

let test_socket_connect_and_reply () =
  let engine, net = make () in
  let server = Udp.Socket.create net.Topology.b ~port:53 () in
  Udp.Socket.on_receive server (fun pkt ->
      Udp.Socket.sendto server ~dst:pkt.Packet.flow.Addr.src ~payload_bytes:10 (Packet.Raw 10));
  let client = Udp.Socket.create net.Topology.a () in
  Udp.Socket.connect client (Addr.endpoint ~host:1 ~port:53);
  let replies = ref 0 in
  Udp.Socket.on_receive client (fun _ -> incr replies);
  Udp.Socket.send client ~payload_bytes:5 (Packet.Raw 5);
  Engine.run engine;
  Alcotest.(check int) "reply came back to connected socket" 1 !replies;
  (match Udp.Socket.peer client with
  | Some p -> Alcotest.(check int) "peer host" 1 p.Addr.host
  | None -> Alcotest.fail "expected a peer")

let test_socket_close_releases_port () =
  let engine, net = make () in
  ignore engine;
  let s1 = Udp.Socket.create net.Topology.a ~port:1000 () in
  Udp.Socket.close s1;
  let s2 = Udp.Socket.create net.Topology.a ~port:1000 () in
  ignore s2;
  "rebind after close succeeded" => true;
  "send on closed socket raises"
  => (try
        Udp.Socket.sendto s1 ~dst:(Addr.endpoint ~host:1 ~port:1) ~payload_bytes:1 (Packet.Raw 1);
        false
      with Invalid_argument _ -> true)

(* ---- Feedback.Receiver -------------------------------------------------- *)

let test_receiver_immediate_acks () =
  let engine = Engine.create () in
  let acks = ref [] in
  let r =
    Udp.Feedback.Receiver.create engine
      ~send_ack:(fun ~max_seq ~count ~bytes ~ts_echo ->
        acks := (max_seq, count, bytes, ts_echo) :: !acks)
      ()
  in
  Udp.Feedback.Receiver.on_data r ~seq:0 ~bytes:100 ~ts:111;
  Udp.Feedback.Receiver.on_data r ~seq:1 ~bytes:200 ~ts:222;
  Alcotest.(check int) "one ack per packet" 2 (List.length !acks);
  (match !acks with
  | (max_seq, count, bytes, ts) :: _ ->
      Alcotest.(check int) "latest seq" 1 max_seq;
      Alcotest.(check int) "count 1" 1 count;
      Alcotest.(check int) "bytes of that packet" 200 bytes;
      Alcotest.(check int) "timestamp echoed" 222 ts
  | [] -> Alcotest.fail "no acks");
  Alcotest.(check int) "totals" 2 (Udp.Feedback.Receiver.packets_received r);
  Alcotest.(check int) "byte totals" 300 (Udp.Feedback.Receiver.bytes_received r)

let test_receiver_batches_by_count () =
  let engine = Engine.create () in
  let acks = ref [] in
  let r =
    Udp.Feedback.Receiver.create engine
      ~send_ack:(fun ~max_seq ~count ~bytes ~ts_echo ->
        ignore ts_echo;
        acks := (max_seq, count, bytes) :: !acks)
      ~batch:(3, Time.sec 10.) ()
  in
  for seq = 0 to 5 do
    Udp.Feedback.Receiver.on_data r ~seq ~bytes:100 ~ts:1
  done;
  Alcotest.(check int) "two batched acks for six packets" 2 (List.length !acks);
  match !acks with
  | (m2, c2, b2) :: (m1, c1, b1) :: _ ->
      Alcotest.(check (list int)) "batch contents" [ 2; 3; 300; 5; 3; 300 ]
        [ m1; c1; b1; m2; c2; b2 ]
  | _ -> Alcotest.fail "unexpected acks"

let test_receiver_batches_by_time () =
  let engine = Engine.create () in
  let acks = ref 0 in
  let r =
    Udp.Feedback.Receiver.create engine
      ~send_ack:(fun ~max_seq:_ ~count:_ ~bytes:_ ~ts_echo:_ -> incr acks)
      ~batch:(100, Time.ms 50) ()
  in
  Udp.Feedback.Receiver.on_data r ~seq:0 ~bytes:10 ~ts:1;
  Engine.run_for engine (Time.ms 40);
  Alcotest.(check int) "not yet" 0 !acks;
  Engine.run_for engine (Time.ms 20);
  Alcotest.(check int) "flushed by timer" 1 !acks

(* ---- Feedback.Sender ------------------------------------------------------ *)

let test_sender_resolves_and_samples_rtt () =
  let engine = Engine.create () in
  let reports = ref [] in
  let s = Udp.Feedback.Sender.create engine ~on_report:(fun r -> reports := r :: !reports) () in
  Engine.run_for engine (Time.ms 5);
  let sent_at = Engine.now engine in
  let seq = Udp.Feedback.Sender.on_transmit s ~bytes:500 in
  Alcotest.(check int) "first seq is 0" 0 seq;
  Engine.run_for engine (Time.ms 30);
  Udp.Feedback.Sender.on_ack s ~max_seq:0 ~count:1 ~bytes:500 ~ts_echo:sent_at;
  (match !reports with
  | [ r ] ->
      Alcotest.(check int) "nsent" 500 r.Udp.Feedback.nsent;
      Alcotest.(check int) "nrecd" 500 r.Udp.Feedback.nrecd;
      "no loss" => (r.Udp.Feedback.loss = Cm.Cm_types.No_loss);
      (match r.Udp.Feedback.rtt with
      | Some rtt -> Alcotest.(check int) "rtt = 30ms" (Time.ms 30) rtt
      | None -> Alcotest.fail "expected rtt")
  | _ -> Alcotest.fail "expected one report");
  Alcotest.(check int) "nothing outstanding" 0 (Udp.Feedback.Sender.outstanding_packets s)

let test_sender_detects_gap_loss () =
  let engine = Engine.create () in
  let reports = ref [] in
  let s = Udp.Feedback.Sender.create engine ~on_report:(fun r -> reports := r :: !reports) () in
  (* a whole window of ten packets is in flight before any feedback *)
  for _ = 0 to 9 do
    ignore (Udp.Feedback.Sender.on_transmit s ~bytes:100)
  done;
  (* receiver saw only 4 of the 5 packets up to seq 4 *)
  Udp.Feedback.Sender.on_ack s ~max_seq:4 ~count:4 ~bytes:400 ~ts_echo:0;
  (match !reports with
  | [ r ] ->
      Alcotest.(check int) "five resolved" 500 r.Udp.Feedback.nsent;
      Alcotest.(check int) "four arrived" 400 r.Udp.Feedback.nrecd;
      "transient loss" => (r.Udp.Feedback.loss = Cm.Cm_types.Transient)
  | _ -> Alcotest.fail "expected one report");
  (* a second loss in the same in-flight window must not re-report *)
  reports := [];
  Udp.Feedback.Sender.on_ack s ~max_seq:9 ~count:4 ~bytes:400 ~ts_echo:0;
  (match !reports with
  | [ r ] -> "gated within window" => (r.Udp.Feedback.loss = Cm.Cm_types.No_loss)
  | _ -> Alcotest.fail "expected one report")

let test_sender_timeout_persistent () =
  let engine = Engine.create () in
  let reports = ref [] in
  let s =
    Udp.Feedback.Sender.create engine
      ~on_report:(fun r -> reports := r :: !reports)
      ~timeout_floor:(Time.ms 300) ()
  in
  for _ = 0 to 2 do
    ignore (Udp.Feedback.Sender.on_transmit s ~bytes:100)
  done;
  Engine.run_for engine (Time.sec 1.);
  (match !reports with
  | [ r ] ->
      "persistent after silence" => (r.Udp.Feedback.loss = Cm.Cm_types.Persistent);
      Alcotest.(check int) "all bytes written off" 300 r.Udp.Feedback.nsent;
      Alcotest.(check int) "nothing received" 0 r.Udp.Feedback.nrecd
  | _ -> Alcotest.fail "expected exactly one timeout report");
  Alcotest.(check int) "outstanding cleared" 0 (Udp.Feedback.Sender.outstanding_packets s);
  Udp.Feedback.Sender.shutdown s

(* ---- Cc_socket -------------------------------------------------------------- *)

let make_cc ?(bandwidth = 1e6) () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay:(Time.ms 10) () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:6000 () in
  let sock = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:6000) () in
  (engine, net, cm, receiver, sock)

let test_cc_socket_paces_and_delivers () =
  let engine, _net, _cm, receiver, sock = make_cc () in
  (* stay within the default kernel buffer (128) *)
  for _ = 1 to 100 do
    Udp.Cc_socket.send sock 1000
  done;
  Engine.run_for engine (Time.sec 10.);
  Alcotest.(check int) "every datagram delivered" 100
    (Udp.Feedback.Receiver.packets_received receiver);
  Alcotest.(check int) "sender accounted" 100 (Udp.Cc_socket.packets_sent sock);
  Alcotest.(check int) "no drops" 0 (Udp.Cc_socket.queue_drops sock);
  Alcotest.(check int) "queue drained" 0 (Udp.Cc_socket.queued sock)

let test_cc_socket_respects_congestion () =
  (* on a 1 Mbit/s link the CM must pace 200 KB over >= ~1.4 s *)
  let engine, _net, _cm, receiver, sock = make_cc ~bandwidth:1e6 () in
  for _ = 1 to 100 do
    Udp.Cc_socket.send sock 1000
  done;
  Engine.run_for engine (Time.ms 700);
  let early = Udp.Feedback.Receiver.bytes_received receiver in
  "cannot have delivered everything yet" => (early < 100_000);
  Engine.run_for engine (Time.sec 10.);
  Alcotest.(check int) "eventually all delivered" 100_000
    (Udp.Feedback.Receiver.bytes_received receiver);
  ignore sock

let test_cc_socket_queue_limit () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:1e6 ~delay:(Time.ms 10) () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let _receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:6000 () in
  let sock =
    Udp.Cc_socket.create net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:6000)
      ~queue_limit_pkts:10 ()
  in
  for _ = 1 to 50 do
    Udp.Cc_socket.send sock 1000
  done;
  "overflow datagrams dropped" => (Udp.Cc_socket.queue_drops sock > 0);
  "queue bounded" => (Udp.Cc_socket.queued sock <= 10);
  Engine.run_for engine (Time.ms 10)

let test_cc_socket_rejects_oversized () =
  let _engine, _net, _cm, _receiver, sock = make_cc () in
  "payload above mtu rejected"
  => (try
        Udp.Cc_socket.send sock 2000;
        false
      with Invalid_argument _ -> true);
  "zero payload rejected"
  => (try
        Udp.Cc_socket.send sock 0;
        false
      with Invalid_argument _ -> true)

let test_cc_socket_close () =
  let engine, _net, cm, _receiver, sock = make_cc () in
  Udp.Cc_socket.send sock 1000;
  Engine.run_for engine (Time.ms 100);
  Udp.Cc_socket.close sock;
  Alcotest.(check (list int)) "cm flow closed" [] (Cm.flows cm);
  "send after close raises"
  => (try
        Udp.Cc_socket.send sock 1000;
        false
      with Invalid_argument _ -> true)

let prop_feedback_conservation =
  QCheck.Test.make ~name:"feedback sender conserves bytes" ~count:100
    QCheck.(small_list (int_range 1 1400))
    (fun sizes ->
      let engine = Engine.create () in
      let resolved = ref 0 in
      let s =
        Udp.Feedback.Sender.create engine
          ~on_report:(fun r -> resolved := !resolved + r.Udp.Feedback.nsent)
          ()
      in
      let total = List.fold_left ( + ) 0 sizes in
      List.iteri
        (fun i bytes ->
          let seq = Udp.Feedback.Sender.on_transmit s ~bytes in
          ignore i;
          ignore seq)
        sizes;
      (* ack everything in one batch *)
      Udp.Feedback.Sender.on_ack s ~max_seq:(List.length sizes - 1) ~count:(List.length sizes)
        ~bytes:total ~ts_echo:0;
      !resolved = total && Udp.Feedback.Sender.outstanding_bytes s = 0)


let prop_cc_socket_conservation =
  QCheck.Test.make ~name:"cc socket: received <= sent, all resolved" ~count:10
    QCheck.(pair (int_range 1 500) (int_range 20 120))
    (fun (seed, n) ->
      let engine = Engine.create () in
      let rng = Rng.create ~seed in
      let net =
        Topology.pipe engine ~bandwidth_bps:5e6 ~delay:(Time.ms 10) ~loss_rate:0.02 ~rng ()
      in
      let cm = Cm.create engine ~mtu:1000 () in
      Cm.attach cm net.Topology.a;
      let receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:6000 () in
      let sock =
        Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:6000) ()
      in
      for _ = 1 to n do
        Udp.Cc_socket.send sock 1000
      done;
      Engine.run_for engine (Time.sec 30.);
      let sent = Udp.Cc_socket.packets_sent sock in
      let recd = Udp.Feedback.Receiver.packets_received receiver in
      sent = n && recd <= n && Udp.Cc_socket.unresolved_packets sock = 0)

let () =
  Alcotest.run "udp"
    [
      ( "socket",
        [
          Alcotest.test_case "roundtrip" `Quick test_socket_roundtrip;
          Alcotest.test_case "connect and reply" `Quick test_socket_connect_and_reply;
          Alcotest.test_case "close releases port" `Quick test_socket_close_releases_port;
        ] );
      ( "feedback-receiver",
        [
          Alcotest.test_case "immediate acks" `Quick test_receiver_immediate_acks;
          Alcotest.test_case "batch by count" `Quick test_receiver_batches_by_count;
          Alcotest.test_case "batch by time" `Quick test_receiver_batches_by_time;
        ] );
      ( "feedback-sender",
        [
          Alcotest.test_case "resolution and rtt" `Quick test_sender_resolves_and_samples_rtt;
          Alcotest.test_case "gap loss detection" `Quick test_sender_detects_gap_loss;
          Alcotest.test_case "timeout -> persistent" `Quick test_sender_timeout_persistent;
          QCheck_alcotest.to_alcotest prop_feedback_conservation;
        ] );
      ( "cc-socket",
        [
          Alcotest.test_case "paces and delivers" `Quick test_cc_socket_paces_and_delivers;
          Alcotest.test_case "respects congestion" `Quick test_cc_socket_respects_congestion;
          Alcotest.test_case "kernel queue limit" `Quick test_cc_socket_queue_limit;
          Alcotest.test_case "rejects bad sizes" `Quick test_cc_socket_rejects_oversized;
          Alcotest.test_case "close tears down" `Quick test_cc_socket_close;
          QCheck_alcotest.to_alcotest prop_cc_socket_conservation;
        ] );
    ]
