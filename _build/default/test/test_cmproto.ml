(* Tests for the CM protocol: receiver-side CM feedback (the paper's §5
   "remains to be studied" extension). *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

let make ?(bandwidth = 1e7) ?(delay = Time.ms 10) ?(loss = 0.) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay ~loss_rate:loss ~rng () in
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let sender_agent = Cmproto.Sender_agent.install net.Topology.a cm in
  let receiver_agent = Cmproto.Receiver_agent.install net.Topology.b () in
  (engine, net, cm, sender_agent, receiver_agent)

let test_unwrap () =
  let inner = Packet.Raw 42 in
  let wrapped = Cmproto.Data { seq = 7; ts = 9; inner } in
  "unwrap strips the header" => (Cmproto.unwrap wrapped == inner);
  "unwrap passes plain payloads" => (Cmproto.unwrap inner == inner)

let test_receiver_strips_header_for_app () =
  let engine, net, cm, agent, _r = make () in
  let got = ref [] in
  let server = Udp.Socket.create net.Topology.b ~port:7000 () in
  Udp.Socket.on_receive server (fun pkt -> got := pkt.Packet.payload :: !got);
  let session =
    Cmproto.Session.create agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Cmproto.Session.send session 500;
  Engine.run_for engine (Time.ms 100);
  (match !got with
  | [ Packet.Raw 500 ] -> ()
  | [ _ ] -> Alcotest.fail "application saw a wrapped payload"
  | l -> Alcotest.fail (Printf.sprintf "expected exactly one packet, got %d" (List.length l)));
  "app never acknowledges anything" => (Udp.Socket.packets_sent server = 0)

let test_feedback_closes_the_loop () =
  let engine, _net, cm, agent, receiver = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  (* note: no application socket at all on the receiver — the agent still
     acknowledges *)
  for _ = 1 to 20 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 2.);
  Alcotest.(check int) "all datagrams transmitted" 20 (Cmproto.Session.packets_sent session);
  Alcotest.(check int) "all resolved by kernel feedback" 0
    (Cmproto.Session.unresolved_packets session);
  "receiver agent saw the data" => (Cmproto.Receiver_agent.data_seen receiver = 20);
  "feedback flowed" => (Cmproto.Receiver_agent.feedback_sent receiver > 0);
  "sender consumed it" => (Cmproto.Sender_agent.feedback_received agent > 0)

let test_feedback_batches () =
  let engine, _net, cm, agent, receiver = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 40 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 3.);
  let fb = Cmproto.Receiver_agent.feedback_sent receiver in
  (* ack_every = 2: roughly one feedback per two data packets *)
  "feedback batched like delayed acks" => (fb <= 25 && fb >= 15);
  ignore engine

let test_window_opens_and_paces () =
  (* a 1 Mbit/s link: 100 KB must take >= ~0.8 s; the CM window must be
     driven purely by kernel feedback *)
  let engine, _net, cm, agent, _r = make ~bandwidth:1e6 () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 100 do
    Cmproto.Session.send session (1000 - Cmproto.header_bytes)
  done;
  Engine.run_for engine (Time.ms 500);
  "not everything can have been sent yet" => (Cmproto.Session.packets_sent session < 100);
  Engine.run_for engine (Time.sec 10.);
  Alcotest.(check int) "all sent eventually" 100 (Cmproto.Session.packets_sent session);
  Alcotest.(check int) "all resolved" 0 (Cmproto.Session.unresolved_packets session)

let test_loss_detected_via_gaps () =
  let engine, _net, cm, agent, _r = make ~loss:0.05 ~seed:9 () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  let feeder = Timer.create engine ~callback:(fun () ->
      for _ = 1 to 10 do
        if Cmproto.Session.queued session < 64 then Cmproto.Session.send session 500
      done)
  in
  Timer.start_periodic feeder (Time.ms 20);
  Engine.run_for engine (Time.sec 10.);
  Timer.stop feeder;
  let mf = Cm.macroflow_of cm (Cmproto.Session.flow session) in
  "losses fed the loss estimate" => (Cm.Macroflow.loss_rate mf > 0.001);
  "window stayed sane" => (Cm.Macroflow.cwnd mf < 1_000_000)

let test_rtt_reaches_cm () =
  let engine, _net, cm, agent, _r = make ~delay:(Time.ms 25) () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  for _ = 1 to 10 do
    Cmproto.Session.send session 500
  done;
  Engine.run_for engine (Time.sec 2.);
  match (Cm.query cm (Cmproto.Session.flow session)).Cm.Cm_types.srtt with
  | Some srtt -> "srtt near the 50 ms path rtt" => (srtt > Time.ms 45 && srtt < Time.ms 150)
  | None -> Alcotest.fail "no rtt reached the CM"

let test_plain_traffic_untouched () =
  (* non-CM-protocol packets must pass both agents unmodified *)
  let engine, net, _cm, _agent, _r = make () in
  let got = ref 0 in
  let server = Udp.Socket.create net.Topology.b ~port:7777 () in
  Udp.Socket.on_receive server (fun pkt -> got := Packet.payload_bytes pkt);
  let plain = Udp.Socket.create net.Topology.a () in
  Udp.Socket.sendto plain ~dst:(Addr.endpoint ~host:1 ~port:7777) ~payload_bytes:123
    (Packet.Raw 123);
  Engine.run_for engine (Time.ms 100);
  Alcotest.(check int) "plain packet delivered unchanged" 123 !got

let test_orphan_feedback_counted () =
  let engine, _net, cm, agent, _r = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Cmproto.Session.send session 500;
  Engine.run_for engine (Time.ms 20);
  (* close before the feedback returns *)
  Cmproto.Session.close session;
  Engine.run_for engine (Time.sec 1.);
  "late feedback counted as orphan" => (Cmproto.Sender_agent.orphan_feedback agent >= 1)

let test_session_close_releases () =
  let engine, _net, cm, agent, _r = make () in
  let session =
    Cmproto.Session.create agent ~host:_net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:7000)
      ()
  in
  Engine.run_for engine (Time.ms 10);
  Cmproto.Session.close session;
  Alcotest.(check (list int)) "cm flow released" [] (Cm.flows cm);
  "send after close raises"
  => (try
        Cmproto.Session.send session 100;
        false
      with Invalid_argument _ -> true)

let () =
  Alcotest.run "cmproto"
    [
      ( "wire",
        [
          Alcotest.test_case "unwrap" `Quick test_unwrap;
          Alcotest.test_case "receiver strips header" `Quick test_receiver_strips_header_for_app;
          Alcotest.test_case "plain traffic untouched" `Quick test_plain_traffic_untouched;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "closes the loop without app code" `Quick
            test_feedback_closes_the_loop;
          Alcotest.test_case "batches like delayed acks" `Quick test_feedback_batches;
          Alcotest.test_case "rtt reaches the cm" `Quick test_rtt_reaches_cm;
          Alcotest.test_case "orphan feedback counted" `Quick test_orphan_feedback_counted;
        ] );
      ( "session",
        [
          Alcotest.test_case "window paces transmissions" `Quick test_window_opens_and_paces;
          Alcotest.test_case "loss via sequence gaps" `Quick test_loss_detected_via_gaps;
          Alcotest.test_case "close releases resources" `Quick test_session_close_releases;
        ] );
    ]
