(* TCP correctness tests: handshake, transfer, loss recovery, teardown,
   both congestion-control drivers. *)

open Cm_util
open Eventsim
open Netsim

let ( => ) name cond = Alcotest.(check bool) name true cond

type harness = {
  engine : Engine.t;
  net : Topology.pipe;
  mutable server_conn : Tcp.Conn.t option;
  mutable delivered : int;
  mutable server_closed : bool;
}

(* Build a pipe and a listening server that records delivered bytes. *)
let make ?(bandwidth = 1e7) ?(delay = Time.ms 10) ?(loss = 0.) ?(seed = 1)
    ?(config = Tcp.Conn.default_config) ?(server_driver = Tcp.Conn.Native) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let net = Topology.pipe engine ~bandwidth_bps:bandwidth ~delay ~loss_rate:loss ~rng () in
  let h = { engine; net; server_conn = None; delivered = 0; server_closed = false } in
  let _listener =
    Tcp.Conn.listen net.Topology.b ~port:80 ~driver:server_driver
      ~config
      ~on_accept:(fun conn ->
        h.server_conn <- Some conn;
        Tcp.Conn.on_receive conn (fun n -> h.delivered <- h.delivered + n);
        Tcp.Conn.on_closed conn (fun () -> h.server_closed <- true))
      ()
  in
  h

let dst = Addr.endpoint ~host:1 ~port:80

let test_handshake () =
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  let established = ref false in
  Tcp.Conn.on_established c (fun () -> established := true);
  Engine.run_for h.engine (Time.ms 100);
  "client established" => !established;
  (match h.server_conn with
  | Some s -> "server established" => (Tcp.Conn.state s = Tcp.Conn.Established)
  | None -> Alcotest.fail "no server connection");
  "client in established" => (Tcp.Conn.state c = Tcp.Conn.Established)

let test_lossless_transfer () =
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 100_000;
  Engine.run_for h.engine (Time.sec 5.);
  Alcotest.(check int) "every byte delivered exactly once" 100_000 h.delivered;
  let st = Tcp.Conn.stats c in
  Alcotest.(check int) "no retransmissions" 0 st.Tcp.Conn.retransmits;
  Alcotest.(check int) "all bytes acked" 100_000 st.Tcp.Conn.bytes_acked

let test_transfer_with_loss () =
  let h = make ~loss:0.02 ~seed:7 () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 300_000;
  Engine.run_for h.engine (Time.sec 60.);
  Alcotest.(check int) "all bytes delivered despite loss" 300_000 h.delivered;
  let st = Tcp.Conn.stats c in
  "loss caused retransmissions" => (st.Tcp.Conn.retransmits > 0)

let test_cm_transfer_with_loss () =
  let engine_probe = ref None in
  ignore engine_probe;
  let h = make ~loss:0.02 ~seed:11 () in
  let cm = Cm.create h.engine ~mtu:Tcp.Conn.default_config.Tcp.Conn.mss () in
  Cm.attach cm h.net.Topology.a;
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~driver:(Tcp.Conn.Cm_driven cm) () in
  Tcp.Conn.send c 300_000;
  Engine.run_for h.engine (Time.sec 60.);
  Alcotest.(check int) "TCP/CM delivers everything" 300_000 h.delivered;
  "used the CM (grants issued)" => ((Cm.counters cm).Cm.grants > 100)

let test_fast_retransmit () =
  (* lossy enough to trigger triple-dupack recovery on a long transfer *)
  let h = make ~loss:0.01 ~seed:3 () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 500_000;
  Engine.run_for h.engine (Time.sec 60.);
  let st = Tcp.Conn.stats c in
  Alcotest.(check int) "delivered" 500_000 h.delivered;
  "fast retransmit was used" => (st.Tcp.Conn.fast_retransmits > 0)

let test_rto_on_blackout () =
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Engine.run_for h.engine (Time.ms 100);
  (* black out the forward path mid-transfer *)
  Tcp.Conn.send c 50_000;
  Link.set_loss_rate h.net.Topology.ab 0.;
  Engine.run_for h.engine (Time.ms 1);
  (* drop everything for a second *)
  let rng = Rng.create ~seed:5 in
  let lossy =
    Link.create h.engine ~bandwidth_bps:1e7 ~delay:(Time.ms 10) ~loss_rate:1.0 ~rng
      ~sink:(fun pkt -> Host.deliver h.net.Topology.b pkt)
      ()
  in
  Host.attach_route h.net.Topology.a (Link.send lossy);
  Engine.run_for h.engine (Time.sec 2.);
  (* restore *)
  Host.attach_route h.net.Topology.a (Link.send h.net.Topology.ab);
  Engine.run_for h.engine (Time.sec 30.);
  let st = Tcp.Conn.stats c in
  "timeout occurred" => (st.Tcp.Conn.timeouts > 0);
  Alcotest.(check int) "recovered after blackout" 50_000 h.delivered

let test_fin_teardown () =
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  let client_closed = ref false in
  Tcp.Conn.on_closed c (fun () -> client_closed := true);
  Tcp.Conn.send c 10_000;
  Engine.run_for h.engine (Time.ms 500);
  Tcp.Conn.close c;
  Engine.run_for h.engine (Time.ms 500);
  (* server sees FIN, closes its side *)
  (match h.server_conn with
  | Some s ->
      "server in close-wait" => (Tcp.Conn.state s = Tcp.Conn.Close_wait);
      Tcp.Conn.close s
  | None -> Alcotest.fail "no server conn");
  Engine.run_for h.engine (Time.sec 5.);
  "client closed (after time-wait)" => !client_closed;
  "server closed" => h.server_closed;
  Alcotest.(check int) "all data arrived before FIN" 10_000 h.delivered

let test_delayed_acks_halve_acks () =
  let run delayed =
    let config = { Tcp.Conn.default_config with Tcp.Conn.delayed_acks = delayed } in
    let h = make ~config () in
    let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
    Tcp.Conn.send c 200_000;
    Engine.run_for h.engine (Time.sec 10.);
    Alcotest.(check int) "delivered" 200_000 h.delivered;
    match h.server_conn with
    | Some s -> (Tcp.Conn.stats s).Tcp.Conn.acks_out
    | None -> Alcotest.fail "no server"
  in
  let with_delack = run true and without = run false in
  "delayed acks send fewer acks"
  => (float_of_int with_delack < 0.7 *. float_of_int without)

let test_srtt_close_to_path_rtt () =
  let h = make ~delay:(Time.ms 30) () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 200_000;
  Engine.run_for h.engine (Time.sec 10.);
  match Tcp.Conn.srtt c with
  | Some srtt ->
      (* path RTT is 60 ms + serialization/queueing *)
      "srtt in [60ms, 200ms)" => (srtt >= Time.ms 60 && srtt < Time.ms 200)
  | None -> Alcotest.fail "no rtt samples"

let test_karn_mode_works () =
  let config = { Tcp.Conn.default_config with Tcp.Conn.timestamps = false } in
  let h = make ~loss:0.01 ~seed:9 ~config () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
  Tcp.Conn.send c 200_000;
  Engine.run_for h.engine (Time.sec 60.);
  Alcotest.(check int) "delivered without timestamps" 200_000 h.delivered;
  "rtt estimated via Karn" => ((Tcp.Conn.stats c).Tcp.Conn.rtt_samples > 0)

let test_native_throughput_saturates_link () =
  (* 10 Mbps, 20 ms RTT: TCP should achieve near link rate.  (Slow start
     legitimately overflows the drop-tail queue once, so a few
     retransmissions are expected.) *)
  let h = make ~bandwidth:1e7 ~delay:(Time.ms 10) () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 2_000_000;
  Engine.run_for h.engine (Time.sec 4.);
  Alcotest.(check int) "delivered within ~1.3x ideal time" 2_000_000 h.delivered;
  let st = Tcp.Conn.stats c in
  let total = st.Tcp.Conn.segments_out in
  "retransmissions below 5%" => (st.Tcp.Conn.retransmits * 20 < total)

let test_two_flows_share_fairly () =
  let h = make ~bandwidth:1e7 ~delay:(Time.ms 10) () in
  (* second listener on another port *)
  let delivered2 = ref 0 in
  let _l2 =
    Tcp.Conn.listen h.net.Topology.b ~port:81
      ~on_accept:(fun conn -> Tcp.Conn.on_receive conn (fun n -> delivered2 := !delivered2 + n))
      ()
  in
  let c1 = Tcp.Conn.connect h.net.Topology.a ~dst () in
  let c2 = Tcp.Conn.connect h.net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:81) () in
  Tcp.Conn.send c1 10_000_000;
  Tcp.Conn.send c2 10_000_000;
  Engine.run_for h.engine (Time.sec 10.);
  let d1 = h.delivered and d2 = !delivered2 in
  let ratio = float_of_int (Stdlib.max d1 d2) /. float_of_int (Stdlib.max 1 (Stdlib.min d1 d2)) in
  "both flows progressed" => (d1 > 500_000 && d2 > 500_000);
  "rough fairness (ratio < 2.5)" => (ratio < 2.5)

let test_cm_flows_share_macroflow () =
  let h = make () in
  let cm = Cm.create h.engine ~mtu:1448 () in
  Cm.attach cm h.net.Topology.a;
  let delivered2 = ref 0 in
  let _l2 =
    Tcp.Conn.listen h.net.Topology.b ~port:81
      ~on_accept:(fun conn -> Tcp.Conn.on_receive conn (fun n -> delivered2 := !delivered2 + n))
      ()
  in
  let c1 = Tcp.Conn.connect h.net.Topology.a ~dst ~driver:(Tcp.Conn.Cm_driven cm) () in
  let c2 =
    Tcp.Conn.connect h.net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:81)
      ~driver:(Tcp.Conn.Cm_driven cm) ()
  in
  (match (Tcp.Conn.cm_flow c1, Tcp.Conn.cm_flow c2) with
  | Some f1, Some f2 ->
      Alcotest.(check int) "same macroflow" (Cm.macroflow_id cm f1) (Cm.macroflow_id cm f2)
  | _ -> Alcotest.fail "cm flows not open");
  Tcp.Conn.send c1 500_000;
  Tcp.Conn.send c2 500_000;
  Engine.run_for h.engine (Time.sec 10.);
  "both progressed" => (h.delivered > 100_000 && !delivered2 > 100_000)

let test_ecn_reduces_without_drops () =
  (* RED+ECN bottleneck: ECN-enabled TCP should see marks and still deliver *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:21 in
  let a = Host.create engine ~id:0 () in
  let b = Host.create engine ~id:1 () in
  let qdisc = Queue_disc.red ~ecn:true ~min_th:5 ~max_th:15 ~limit_pkts:50 ~rng () in
  let ab =
    Link.create engine ~bandwidth_bps:2e6 ~delay:(Time.ms 10) ~qdisc
      ~sink:(fun p -> Host.deliver b p)
      ()
  in
  let ba =
    Link.create engine ~bandwidth_bps:2e6 ~delay:(Time.ms 10) ~sink:(fun p -> Host.deliver a p) ()
  in
  Host.attach_route a (Link.send ab);
  Host.attach_route b (Link.send ba);
  let config = { Tcp.Conn.default_config with Tcp.Conn.ecn = true } in
  let delivered = ref 0 in
  let _l =
    Tcp.Conn.listen b ~port:80 ~config
      ~on_accept:(fun conn -> Tcp.Conn.on_receive conn (fun n -> delivered := !delivered + n))
      ()
  in
  let c = Tcp.Conn.connect a ~dst ~config () in
  Tcp.Conn.send c 2_000_000;
  Engine.run_for engine (Time.sec 30.);
  Alcotest.(check int) "delivered under ECN" 2_000_000 !delivered;
  "ECN marks were applied" => ((Link.stats ab).Link.ecn_marks > 0)

let test_nagle_coalesces () =
  let config = { Tcp.Conn.default_config with Tcp.Conn.nagle = true } in
  let h = make ~config () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
  Engine.run_for h.engine (Time.ms 100);
  (* many tiny writes while un-acked data exists *)
  for _ = 1 to 50 do
    Tcp.Conn.send c 10
  done;
  Engine.run_for h.engine (Time.sec 2.);
  Alcotest.(check int) "all bytes arrive" 500 h.delivered;
  let st = Tcp.Conn.stats c in
  "far fewer segments than writes" => (st.Tcp.Conn.segments_out < 25)

let test_rtt_sample_counting () =
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Tcp.Conn.send c 100_000;
  Engine.run_for h.engine (Time.sec 5.);
  "multiple rtt samples" => ((Tcp.Conn.stats c).Tcp.Conn.rtt_samples > 5)

let test_cm_initial_window_is_one () =
  (* the paper: CM starts at 1 MTU, Linux at 2 — check the first flight *)
  let h = make ~delay:(Time.ms 50) () in
  let cm = Cm.create h.engine ~mtu:1448 () in
  Cm.attach cm h.net.Topology.a;
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~driver:(Tcp.Conn.Cm_driven cm) () in
  Tcp.Conn.send c 100_000;
  (* run just past the handshake: one RTT (100 ms) + epsilon *)
  Engine.run_for h.engine (Time.ms 130);
  let st = Tcp.Conn.stats c in
  (* after handshake completes (~100ms) the CM window allows one segment *)
  "first flight limited to 1 segment"
  => (st.Tcp.Conn.bytes_sent <= 1448)



let test_transfer_with_reordering () =
  (* a path that reorders 10% of packets by 5 ms: dupacks without loss;
     TCP must neither lose nor duplicate data, and spurious fast
     retransmits must stay rare *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:23 in
  let a = Host.create engine ~id:0 () in
  let b = Host.create engine ~id:1 () in
  let ab =
    Link.create engine ~bandwidth_bps:1e7 ~delay:(Time.ms 10) ~reorder:(0.1, Time.ms 5) ~rng
      ~sink:(fun p -> Host.deliver b p)
      ()
  in
  let ba =
    Link.create engine ~bandwidth_bps:1e7 ~delay:(Time.ms 10)
      ~sink:(fun p -> Host.deliver a p)
      ()
  in
  Host.attach_route a (Link.send ab);
  Host.attach_route b (Link.send ba);
  let delivered = ref 0 in
  let _l =
    Tcp.Conn.listen b ~port:80
      ~on_accept:(fun c -> Tcp.Conn.on_receive c (fun n -> delivered := !delivered + n))
      ()
  in
  let c = Tcp.Conn.connect a ~dst () in
  Tcp.Conn.send c 500_000;
  Engine.run_for engine (Time.sec 20.);
  Alcotest.(check int) "exactly once despite reordering" 500_000 !delivered



let test_sack_beats_newreno_on_burst_loss () =
  (* drop a burst of 5 packets from one window: SACK repairs them in about
     one RTT; NewReno needs one RTT per hole (or an RTO) *)
  let run sack =
    let engine = Engine.create () in
    let config = { Tcp.Conn.default_config with Tcp.Conn.sack } in
    let a = Host.create engine ~id:0 () in
    let b = Host.create engine ~id:1 () in
    let count = ref 0 in
    let qdisc =
      let inner = Queue_disc.droptail ~limit_pkts:200 () in
      let enqueue pkt =
        if Packet.payload_bytes pkt > 500 then begin
          incr count;
          if !count >= 60 && !count < 65 then Queue_disc.Dropped
          else inner.Queue_disc.enqueue pkt
        end
        else inner.Queue_disc.enqueue pkt
      in
      { inner with Queue_disc.enqueue }
    in
    let ab =
      Link.create engine ~bandwidth_bps:1e7 ~delay:(Time.ms 25) ~qdisc
        ~sink:(fun p -> Host.deliver b p)
        ()
    in
    let ba =
      Link.create engine ~bandwidth_bps:1e7 ~delay:(Time.ms 25)
        ~sink:(fun p -> Host.deliver a p)
        ()
    in
    Host.attach_route a (Link.send ab);
    Host.attach_route b (Link.send ba);
    let delivered = ref 0 in
    let done_at = ref None in
    let total = 300_000 in
    let _l =
      Tcp.Conn.listen b ~port:80 ~config
        ~on_accept:(fun c ->
          Tcp.Conn.on_receive c (fun n ->
              delivered := !delivered + n;
              if !delivered >= total && !done_at = None then
                done_at := Some (Engine.now engine)))
        ()
    in
    let c = Tcp.Conn.connect a ~dst ~config () in
    Tcp.Conn.send c total;
    Engine.run_for engine (Time.sec 30.);
    let st = Tcp.Conn.stats c in
    ( (match !done_at with Some t -> Time.to_float_ms t | None -> infinity),
      st.Tcp.Conn.timeouts,
      !delivered )
  in
  let sack_ms, sack_rto, sack_del = run true in
  let nr_ms, _nr_rto, nr_del = run false in
  Alcotest.(check int) "sack delivered all" 300_000 sack_del;
  Alcotest.(check int) "newreno delivered all" 300_000 nr_del;
  Alcotest.(check int) "sack avoided timeouts" 0 sack_rto;
  "sack completes sooner" => (sack_ms < nr_ms)

let test_sack_blocks_advertised () =
  (* receiver advertises its out-of-order ranges *)
  let h = make () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
  Engine.run_for h.engine (Time.ms 100);
  (* watch acks leaving the server for SACK blocks *)
  let saw_sack = ref false in
  Host.add_tx_hook h.net.Topology.b (fun pkt ->
      match pkt.Packet.payload with
      | Tcp.Segment.Tcp_seg seg -> if seg.Tcp.Segment.sacks <> [] then saw_sack := true
      | _ -> ());
  (* inject one out-of-order segment well beyond rcv_nxt *)
  let flow =
    Addr.flow ~src:(Tcp.Conn.local c) ~dst:(Tcp.Conn.remote c) ~proto:Addr.Tcp ()
  in
  let seg =
    {
      Tcp.Segment.seq = 50_001;
      len = 1000;
      syn = false;
      fin = false;
      ack = true;
      ack_seq = 1;
      wnd = 1 lsl 20;
      ts_val = Engine.now h.engine;
      ts_ecr = 0;
      ece = false;
      sacks = [];
    }
  in
  Host.deliver h.net.Topology.b
    (Packet.make ~now:(Engine.now h.engine) ~flow ~payload_bytes:1000
       (Tcp.Segment.Tcp_seg seg));
  Engine.run_for h.engine (Time.ms 50);
  "dupack carried a SACK block" => !saw_sack

(* ---- flow control ---------------------------------------------------- *)

let test_slow_consumer_throttles_sender () =
  (* a 20 KB/s reader behind a 10 Mbit/s pipe: the advertised window, not
     congestion, must pace the transfer *)
  let config = { Tcp.Conn.default_config with Tcp.Conn.rwnd = 32_000 } in
  let h = make ~config () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
  Engine.run_for h.engine (Time.ms 200);
  (match h.server_conn with
  | Some s -> Tcp.Conn.set_consume_rate s (Some 20_000.)
  | None -> Alcotest.fail "no server conn");
  Tcp.Conn.send c 300_000;
  Engine.run_for h.engine (Time.sec 5.);
  (* ~32KB buffer + 5s * 20KB/s = ~130KB ceiling; far below what the
     congestion window would allow *)
  "delivery paced by the reader" => (h.delivered > 60_000 && h.delivered < 160_000);
  Engine.run_for h.engine (Time.sec 20.);
  Alcotest.(check int) "everything eventually delivered" 300_000 h.delivered

let test_zero_window_and_persist () =
  let config = { Tcp.Conn.default_config with Tcp.Conn.rwnd = 20_000 } in
  let h = make ~config () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
  Engine.run_for h.engine (Time.ms 200);
  let server = match h.server_conn with Some s -> s | None -> Alcotest.fail "no server" in
  (* a reader that consumes nothing: the window must slam shut *)
  Tcp.Conn.set_consume_rate server (Some 0.);
  Tcp.Conn.send c 100_000;
  Engine.run_for h.engine (Time.sec 10.);
  "receive buffer filled to the window" => (Tcp.Conn.receive_buffered server >= 19_000);
  "sender stalled" => (Tcp.Conn.bytes_unacked c <= Tcp.Conn.default_config.Tcp.Conn.mss);
  Alcotest.(check int) "nothing delivered to the app" 0 h.delivered;
  (* open the tap: persist probes / window updates must resume transfer *)
  Tcp.Conn.set_consume_rate server (Some 1e6);
  Engine.run_for h.engine (Time.sec 20.);
  Alcotest.(check int) "transfer completed after reopening" 100_000 h.delivered

let test_consume_rate_none_flushes () =
  let config = { Tcp.Conn.default_config with Tcp.Conn.rwnd = 50_000 } in
  let h = make ~config () in
  let c = Tcp.Conn.connect h.net.Topology.a ~dst ~config () in
  Engine.run_for h.engine (Time.ms 200);
  let server = match h.server_conn with Some s -> s | None -> Alcotest.fail "no server" in
  Tcp.Conn.set_consume_rate server (Some 0.);
  Tcp.Conn.send c 30_000;
  Engine.run_for h.engine (Time.sec 3.);
  "data parked in the buffer" => (Tcp.Conn.receive_buffered server > 0);
  Tcp.Conn.set_consume_rate server None;
  Alcotest.(check int) "switching to infinite consumer flushes" 0
    (Tcp.Conn.receive_buffered server);
  Engine.run_for h.engine (Time.sec 5.);
  Alcotest.(check int) "whole transfer done" 30_000 h.delivered

(* ------------------------------------------------------------------ *)
(* Property tests *)

(* Exactly-once in-order delivery under arbitrary random loss. *)
let prop_delivery_exact_under_loss =
  QCheck.Test.make ~name:"tcp delivers exactly once under random loss" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 10_000 300_000))
    (fun (seed, bytes) ->
      let h = make ~loss:0.02 ~seed () in
      let c = Tcp.Conn.connect h.net.Topology.a ~dst () in
      Tcp.Conn.send c bytes;
      Engine.run_for h.engine (Time.sec 120.);
      h.delivered = bytes)

(* Same, for the CM driver. *)
let prop_cm_delivery_exact_under_loss =
  QCheck.Test.make ~name:"tcp/cm delivers exactly once under random loss" ~count:15
    QCheck.(pair (int_range 1 1000) (int_range 10_000 200_000))
    (fun (seed, bytes) ->
      let h = make ~loss:0.02 ~seed () in
      let cm = Cm.create h.engine () in
      Cm.attach cm h.net.Topology.a;
      let c = Tcp.Conn.connect h.net.Topology.a ~dst ~driver:(Tcp.Conn.Cm_driven cm) () in
      Tcp.Conn.send c bytes;
      Engine.run_for h.engine (Time.sec 120.);
      h.delivered = bytes)

(* Receiver reassembly: inject data segments for [1, N] in a random
   permutation of random-sized chunks (with one duplicate), directly into
   the receiving connection; every byte must be delivered once, in order. *)
let prop_reassembly_any_order =
  QCheck.Test.make ~name:"receiver reassembles any segment arrival order" ~count:50
    QCheck.(pair (int_range 1 1000) (int_range 2 30))
    (fun (seed, nchunks) ->
      let rng = Rng.create ~seed in
      let engine = Engine.create () in
      let net = Topology.pipe engine ~bandwidth_bps:1e8 ~delay:(Time.us 100) () in
      let delivered = ref 0 in
      let server_conn = ref None in
      let _l =
        Tcp.Conn.listen net.Topology.b ~port:80
          ~on_accept:(fun conn ->
            server_conn := Some conn;
            Tcp.Conn.on_receive conn (fun n -> delivered := !delivered + n))
          ()
      in
      let client = Tcp.Conn.connect net.Topology.a ~dst () in
      Engine.run_for engine (Time.ms 50);
      ignore client;
      (* build random chunk boundaries over [1, total+1) *)
      let sizes = Array.init nchunks (fun _ -> 1 + Rng.int rng 1400) in
      let total = Array.fold_left ( + ) 0 sizes in
      let chunks = ref [] in
      let seq = ref 1 in
      Array.iter
        (fun len ->
          chunks := (!seq, len) :: !chunks;
          seq := !seq + len)
        sizes;
      let chunks = Array.of_list !chunks in
      Rng.shuffle rng chunks;
      (* duplicate one chunk to exercise the stale-duplicate path *)
      let dup = chunks.(Rng.int rng (Array.length chunks)) in
      let inject (seq, len) =
        let flow =
          Addr.flow
            ~src:(Tcp.Conn.local client)
            ~dst:(Tcp.Conn.remote client)
            ~proto:Addr.Tcp ()
        in
        let seg =
          {
            Tcp.Segment.seq;
            len;
            syn = false;
            fin = false;
            ack = true;
            ack_seq = 1;
            wnd = 1 lsl 20;
            ts_val = Engine.now engine;
            ts_ecr = 0;
            ece = false;
            sacks = [];
          }
        in
        let pkt =
          Packet.make ~now:(Engine.now engine) ~flow ~payload_bytes:len
            (Tcp.Segment.Tcp_seg seg)
        in
        Host.deliver net.Topology.b pkt
      in
      Array.iter inject chunks;
      inject dup;
      Engine.run_for engine (Time.ms 10);
      !delivered = total)

let () =
  Alcotest.run "tcp"
    [
      ( "basic",
        [
          Alcotest.test_case "three-way handshake" `Quick test_handshake;
          Alcotest.test_case "lossless transfer" `Quick test_lossless_transfer;
          Alcotest.test_case "fin teardown" `Quick test_fin_teardown;
          Alcotest.test_case "srtt tracks path rtt" `Quick test_srtt_close_to_path_rtt;
          Alcotest.test_case "rtt samples counted" `Quick test_rtt_sample_counting;
          Alcotest.test_case "nagle coalesces tiny writes" `Quick test_nagle_coalesces;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recovers from random loss" `Quick test_transfer_with_loss;
          Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit;
          Alcotest.test_case "rto after blackout" `Quick test_rto_on_blackout;
          Alcotest.test_case "karn mode (no timestamps)" `Quick test_karn_mode_works;
          Alcotest.test_case "reordering tolerated" `Quick test_transfer_with_reordering;
          Alcotest.test_case "sack beats newreno on burst loss" `Quick
            test_sack_beats_newreno_on_burst_loss;
          Alcotest.test_case "sack blocks advertised" `Quick test_sack_blocks_advertised;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "delayed acks" `Quick test_delayed_acks_halve_acks;
          Alcotest.test_case "saturates clean link" `Quick test_native_throughput_saturates_link;
          Alcotest.test_case "two native flows fair" `Quick test_two_flows_share_fairly;
          Alcotest.test_case "ecn marks, no drops" `Quick test_ecn_reduces_without_drops;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "slow consumer throttles" `Quick test_slow_consumer_throttles_sender;
          Alcotest.test_case "zero window + persist" `Quick test_zero_window_and_persist;
          Alcotest.test_case "infinite consumer flushes" `Quick test_consume_rate_none_flushes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_delivery_exact_under_loss;
          QCheck_alcotest.to_alcotest prop_cm_delivery_exact_under_loss;
          QCheck_alcotest.to_alcotest prop_reassembly_any_order;
        ] );
      ( "tcp/cm",
        [
          Alcotest.test_case "cm transfer with loss" `Quick test_cm_transfer_with_loss;
          Alcotest.test_case "cm flows share macroflow" `Quick test_cm_flows_share_macroflow;
          Alcotest.test_case "cm initial window = 1" `Quick test_cm_initial_window_is_one;
        ] );
    ]
