test/test_apps.ml: Addr Alcotest Cm Cm_apps Cm_util Engine Eventsim Libcm List Netsim Stats Tcp Time Timeline Topology Udp
