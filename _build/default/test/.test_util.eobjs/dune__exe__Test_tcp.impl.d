test/test_tcp.ml: Addr Alcotest Array Cm Cm_util Engine Eventsim Host Link Netsim Packet QCheck QCheck_alcotest Queue_disc Rng Stdlib Tcp Time Topology
