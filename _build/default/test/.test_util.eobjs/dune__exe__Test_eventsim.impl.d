test/test_eventsim.ml: Alcotest Cm_util Engine Eventsim Format List Logs Printf QCheck QCheck_alcotest Sim_log Stdlib Time Timer Unix
