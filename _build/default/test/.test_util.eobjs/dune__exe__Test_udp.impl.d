test/test_udp.ml: Addr Alcotest Cm Cm_util Engine Eventsim List Netsim Packet QCheck QCheck_alcotest Rng Time Topology Udp
