test/test_netsim.ml: Addr Alcotest Array Background Cm_util Cpu Engine Eventsim Float Host Link List Netsim Packet Queue_disc Rng Router Stdlib Time Topology Tracer
