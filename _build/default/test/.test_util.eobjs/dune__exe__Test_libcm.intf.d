test/test_libcm.mli:
