test/test_libcm.ml: Addr Alcotest Cm Cm_util Costs Cpu Engine Eventsim Host Libcm List Netsim Time Topology
