test/test_cm.ml: Addr Alcotest Cm Cm_types Cm_util Controller Engine Eventsim Float Format Fun Host List Macroflow Netsim Packet Printf QCheck QCheck_alcotest Scheduler Stdlib String Time Topology
