test/test_cmproto.mli:
