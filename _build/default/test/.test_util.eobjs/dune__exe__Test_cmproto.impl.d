test/test_cmproto.ml: Addr Alcotest Cm Cm_util Cmproto Engine Eventsim List Netsim Packet Printf Rng Time Timer Topology Udp
