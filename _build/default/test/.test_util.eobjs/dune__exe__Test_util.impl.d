test/test_util.ml: Alcotest Array Byte_queue Cm_util Ewma Float Format Fun Heap List QCheck QCheck_alcotest Rng Stats Stdlib Time Timeline
