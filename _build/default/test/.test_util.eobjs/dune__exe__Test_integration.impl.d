test/test_integration.ml: Addr Alcotest Array Cm Cm_apps Cm_util Engine Eventsim Experiments Float Host Link List Netsim Queue_disc Rng Stdlib Tcp Time Timer Topology Udp
