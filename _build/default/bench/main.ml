(* bench/main — regenerates every table and figure of the paper's
   evaluation (§4), then runs bechamel microbenchmarks of the CM's hot
   paths.

   Set CM_BENCH_FULL=1 for the long variants (10^6-buffer Fig. 4/5 point,
   200k-packet Fig. 6); set CM_BENCH_SEED to change the seed. *)

open Cm_util

let params =
  let seed =
    match Sys.getenv_opt "CM_BENCH_SEED" with Some s -> int_of_string s | None -> 42
  in
  let full = Sys.getenv_opt "CM_BENCH_FULL" = Some "1" in
  { Experiments.Exp_common.seed; full }

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)

let run_experiments () =
  print_endline "=====================================================================";
  print_endline " Congestion Manager reproduction: every table and figure (paper sec 4)";
  print_endline "=====================================================================";
  timed "fig3" (fun () -> Experiments.Fig3.print (Experiments.Fig3.run params));
  timed "fig4+fig5" (fun () -> Experiments.Fig4_5.print (Experiments.Fig4_5.run params));
  timed "fig6" (fun () -> Experiments.Fig6.print (Experiments.Fig6.run params));
  timed "table1" (fun () -> Experiments.Fig6.print_table1 (Experiments.Fig6.run_table1 params));
  timed "fig7" (fun () -> Experiments.Fig7.print (Experiments.Fig7.run params));
  timed "fig8" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig8 params));
  timed "fig9" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig9 params));
  timed "fig10" (fun () -> Experiments.Fig8_10.print (Experiments.Fig8_10.run_fig10 params));
  timed "micro" (fun () -> Experiments.Micro.print (Experiments.Micro.run params));
  timed "ablation_sched" (fun () ->
      Experiments.Ablations.print_scheduler (Experiments.Ablations.run_scheduler params));
  timed "ablation_ctrl" (fun () ->
      Experiments.Ablations.print_controller (Experiments.Ablations.run_controller params));
  timed "ablation_share" (fun () ->
      Experiments.Ablations.print_sharing (Experiments.Ablations.run_sharing params));
  timed "sec6_phttp" (fun () ->
      Experiments.Sec6_phttp.print (Experiments.Sec6_phttp.run params));
  timed "ext_cmproto" (fun () ->
      Experiments.Ext_cmproto.print (Experiments.Ext_cmproto.run params));
  timed "content_adapt" (fun () ->
      Experiments.Content_adapt.print (Experiments.Content_adapt.run params));
  timed "ext_merge" (fun () ->
      Experiments.Ext_merge.print (Experiments.Ext_merge.run params));
  timed "ablation_fairness" (fun () ->
      Experiments.Ablations.print_fairness (Experiments.Ablations.run_fairness params))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of the implementation's hot
   paths on this machine. *)

open Bechamel
open Toolkit

let bench_cm_transaction () =
  (* one full request -> grant -> notify -> update cycle *)
  let engine = Eventsim.Engine.create () in
  let cm = Cm.create engine ~mtu:1448 () in
  let key =
    Netsim.Addr.flow
      ~src:(Netsim.Addr.endpoint ~host:0 ~port:100)
      ~dst:(Netsim.Addr.endpoint ~host:1 ~port:200)
      ~proto:Netsim.Addr.Udp ()
  in
  let fid = Cm.open_flow cm key in
  Cm.register_send cm fid (fun fid ->
      Cm.notify cm fid ~nbytes:1448;
      Cm.update cm fid ~nsent:1448 ~nrecd:1448 ~loss:Cm.Cm_types.No_loss ~rtt:(Cm_util.Time.ms 10) ());
  Staged.stage (fun () ->
      Cm.request cm fid;
      (* bounded: the macroflow's periodic maintenance timer means the
         event queue never fully drains *)
      Eventsim.Engine.run_for engine (Cm_util.Time.us 10))

let bench_engine_event () =
  let engine = Eventsim.Engine.create () in
  Staged.stage (fun () ->
      ignore (Eventsim.Engine.schedule_after engine 10 (fun () -> ()));
      ignore (Eventsim.Engine.step engine))

let bench_heap () =
  let h = Heap.create () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      ignore (Heap.insert h ~prio:(!i land 1023) !i);
      ignore (Heap.extract_min h))

let bench_scheduler () =
  let s = Cm.Scheduler.round_robin () in
  Staged.stage (fun () ->
      s.Cm.Scheduler.enqueue 1;
      s.Cm.Scheduler.enqueue 2;
      ignore (s.Cm.Scheduler.dequeue ());
      ignore (s.Cm.Scheduler.dequeue ()))

let bench_controller () =
  let c = Cm.Controller.aimd () ~mtu:1448 in
  Staged.stage (fun () ->
      c.Cm.Controller.on_ack ~nbytes:1448;
      if c.Cm.Controller.cwnd () > 1 lsl 20 then c.Cm.Controller.on_loss Cm.Cm_types.Persistent)

let bench_rto () =
  let r = Tcp.Rto.create () in
  Staged.stage (fun () ->
      Tcp.Rto.observe r (Cm_util.Time.ms 50);
      ignore (Tcp.Rto.rto r))

let tests =
  Test.make_grouped ~name:"hot-paths" ~fmt:"%s %s"
    [
      Test.make ~name:"cm request/grant/notify/update" (bench_cm_transaction ());
      Test.make ~name:"engine schedule+step" (bench_engine_event ());
      Test.make ~name:"heap insert+extract" (bench_heap ());
      Test.make ~name:"rr scheduler cycle" (bench_scheduler ());
      Test.make ~name:"aimd on_ack" (bench_controller ());
      Test.make ~name:"rto observe" (bench_rto ());
    ]

let run_microbenchmarks () =
  print_endline "";
  print_endline "== Bechamel microbenchmarks: implementation hot paths (this machine) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "%-44s %10.1f ns/op\n" name est
      | _ -> Printf.printf "%-44s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows)

let () =
  run_experiments ();
  run_microbenchmarks ()
