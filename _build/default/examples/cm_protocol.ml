(* The CM protocol: congestion-controlled UDP with ZERO feedback code.

   The paper's implementation requires every UDP application to implement
   its own acknowledgments (§3.1).  The CM-protocol extension
   (lib/cmproto, from the paper's §5 future work) moves that into the
   hosts' CMs: the sender's CM stamps each packet with a small header, the
   receiver's CM strips it and acknowledges on the application's behalf.

   Below, the receiving "application" is three lines long and never sends
   a byte — yet the sender is fully congestion controlled.

   Run with: dune exec examples/cm_protocol.exe *)

open Cm_util
open Eventsim
open Netsim

let () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:2e6 ~delay:(Time.ms 20) () in

  (* sender side: CM + the CM-protocol sender agent *)
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let sender_agent = Cmproto.Sender_agent.install net.Topology.a cm in

  (* receiver side: just the kernel agent — and an utterly passive app *)
  let receiver_agent = Cmproto.Receiver_agent.install net.Topology.b () in
  let received = ref 0 in
  let app = Udp.Socket.create net.Topology.b ~port:9000 () in
  Udp.Socket.on_receive app (fun pkt -> received := !received + Packet.payload_bytes pkt);

  (* a session sending 2000 datagrams as fast as the CM allows *)
  let session =
    Cmproto.Session.create sender_agent ~host:net.Topology.a ~cm
      ~dst:(Addr.endpoint ~host:1 ~port:9000)
      ()
  in
  let sent = ref 0 in
  let feeder =
    Timer.create engine ~callback:(fun () ->
        while !sent < 2000 && Cmproto.Session.queued session < 64 do
          incr sent;
          Cmproto.Session.send session 900
        done)
  in
  Timer.start_periodic feeder (Time.ms 10);
  Engine.run_for engine (Time.sec 10.);
  Timer.stop feeder;

  let st = Cm.query cm (Cmproto.Session.flow session) in
  Format.printf "sent %d datagrams, app received %d bytes (link 2 Mbit/s for 10 s = 2.5 MB)@."
    (Cmproto.Session.packets_sent session)
    !received;
  Format.printf "kernel feedback packets: %d (app sent 0 acknowledgments)@."
    (Cmproto.Receiver_agent.feedback_sent receiver_agent);
  Format.printf "CM state: %a@." Cm.Cm_types.pp_status st
