examples/web_sharing.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Format List Netsim Tcp Time Topology
