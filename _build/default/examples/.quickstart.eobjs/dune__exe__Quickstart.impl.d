examples/quickstart.ml: Addr Cm Cm_util Engine Eventsim Format Netsim Packet Time Topology Udp
