examples/vat_audio.mli:
