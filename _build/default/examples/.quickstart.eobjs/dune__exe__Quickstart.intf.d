examples/quickstart.mli:
