examples/layered_streaming.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Format Libcm Netsim Time Timer Topology Udp
