examples/cm_protocol.ml: Addr Cm Cm_util Cmproto Engine Eventsim Format Netsim Packet Time Timer Topology Udp
