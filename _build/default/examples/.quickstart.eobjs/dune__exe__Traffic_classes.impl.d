examples/traffic_classes.ml: Addr Cm Cm_util Engine Eventsim Format List Netsim Time Timer Topology Udp
