examples/web_sharing.mli:
