examples/cm_protocol.mli:
