examples/vat_audio.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Format Libcm Netsim Stats Time Timer Topology
