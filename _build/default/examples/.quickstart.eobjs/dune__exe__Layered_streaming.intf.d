examples/layered_streaming.mli:
