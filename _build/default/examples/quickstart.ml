(* Quickstart: the CM request/callback loop in ~60 lines.

   Build a two-host network, attach a Congestion Manager to the sender,
   open a flow, and drive the paper's core loop by hand:

     cm_request -> cmapp_send grant -> transmit -> cm_notify (automatic,
     via the IP hook) -> receiver feedback -> cm_update -> window opens.

   Run with: dune exec examples/quickstart.exe *)

open Cm_util
open Eventsim
open Netsim

let () =
  (* 1. a 4 Mbps / 40 ms-RTT path between two hosts *)
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:4e6 ~delay:(Time.ms 20) () in

  (* 2. a Congestion Manager on the sending host, hooked into its IP
        output path so transmissions are charged automatically *)
  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;

  (* 3. a trivial receiver that acknowledges every packet *)
  let _receiver = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:9000 () in

  (* 4. a UDP socket and its CM flow *)
  let socket = Udp.Socket.create net.Topology.a () in
  let dst = Addr.endpoint ~host:1 ~port:9000 in
  Udp.Socket.connect socket dst;
  let fid = Cm.open_flow cm (Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp ()) in

  (* 5. feedback plumbing: convert receiver acks into cm_update calls *)
  let fb =
    Udp.Feedback.Sender.create engine
      ~on_report:(fun r ->
        Cm.update cm fid ~nsent:r.Udp.Feedback.nsent ~nrecd:r.Udp.Feedback.nrecd
          ~loss:r.Udp.Feedback.loss ?rtt:r.Udp.Feedback.rtt ())
      ()
  in
  Udp.Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Ack { max_seq; count; bytes; ts_echo } ->
          Udp.Feedback.Sender.on_ack fb ~max_seq ~count ~bytes ~ts_echo
      | _ -> ());

  (* 6. the ALF loop: each grant sends one packet and requests the next *)
  let sent = ref 0 in
  Cm.register_send cm fid (fun fid ->
      incr sent;
      let bytes = 1000 in
      let seq = Udp.Feedback.Sender.on_transmit fb ~bytes in
      Udp.Socket.send socket ~payload_bytes:bytes
        (Udp.Feedback.Data { seq; bytes; ts = Engine.now engine });
      if !sent < 2_000 then Cm.request cm fid);
  Cm.request cm fid;

  (* 7. run for five simulated seconds and report *)
  Engine.run_for engine (Time.sec 5.);
  let st = Cm.query cm fid in
  Format.printf "sent %d packets in 5 s@." !sent;
  Format.printf "CM state: %a@." Cm.Cm_types.pp_status st;
  Format.printf "achieved %.2f Mbit/s (link: 4.00 Mbit/s)@."
    (float_of_int (!sent * 1000 * 8) /. 5e6)
