(* Traffic classes: the weighted scheduler and DSCP-keyed macroflows.

   Two senders to the same destination host — an "expedited" class and a
   best-effort bulk class — share one macroflow by default and split its
   window evenly under round-robin.  Swapping in the weighted (stride)
   scheduler splits it 3:1 instead; and under diffserv (§5 of the paper)
   the DSCP-aware aggregation mode gives the classes separate congestion
   state entirely.

   Run with: dune exec examples/traffic_classes.exe *)

open Cm_util
open Eventsim
open Netsim

let run_pair ~title ~scheduler ~weights =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:4e6 ~delay:(Time.ms 20) () in
  let cm = Cm.create engine ~mtu:1000 ~scheduler () in
  Cm.attach cm net.Topology.a;
  let _r1 = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:7001 () in
  let _r2 = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:7002 () in
  let expedited =
    Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:7001) ()
  in
  let bulk = Udp.Cc_socket.create net.Topology.a ~cm ~dst:(Addr.endpoint ~host:1 ~port:7002) () in
  (match weights with
  | Some (we, wb) ->
      Cm.set_weight cm (Udp.Cc_socket.flow expedited) we;
      Cm.set_weight cm (Udp.Cc_socket.flow bulk) wb
  | None -> ());
  let feeder =
    Timer.create engine ~callback:(fun () ->
        List.iter
          (fun s ->
            let room = 64 - Udp.Cc_socket.queued s in
            for _ = 1 to room do
              Udp.Cc_socket.send s 1000
            done)
          [ expedited; bulk ])
  in
  Timer.start_periodic feeder (Time.ms 20);
  Engine.run_for engine (Time.sec 15.);
  Timer.stop feeder;
  let e = Udp.Cc_socket.bytes_sent expedited and b = Udp.Cc_socket.bytes_sent bulk in
  Format.printf "%s@.  expedited %6d KB   bulk %6d KB   ratio %.2f@.@." title (e / 1000)
    (b / 1000)
    (float_of_int e /. float_of_int b)

let () =
  run_pair ~title:"round-robin scheduler (the paper's default):"
    ~scheduler:Cm.Scheduler.round_robin ~weights:None;
  run_pair ~title:"weighted (stride) scheduler, expedited weight 3:"
    ~scheduler:Cm.Scheduler.weighted ~weights:(Some (3.0, 1.0));
  (* DSCP separation: same destination, different service classes *)
  let engine = Engine.create () in
  let cm =
    Cm.create engine ~mtu:1000 ~aggregation:Cm.By_destination_and_dscp ()
  in
  let dst = Addr.endpoint ~host:1 ~port:7001 in
  let ef =
    Cm.open_flow cm
      (Addr.flow ~dscp:46 ~src:(Addr.endpoint ~host:0 ~port:100) ~dst ~proto:Addr.Udp ())
  in
  let be =
    Cm.open_flow cm (Addr.flow ~src:(Addr.endpoint ~host:0 ~port:101) ~dst ~proto:Addr.Udp ())
  in
  Format.printf
    "diffserv aggregation: DSCP 46 flow in macroflow %d, best-effort in macroflow %d@."
    (Cm.macroflow_id cm ef) (Cm.macroflow_id cm be)
