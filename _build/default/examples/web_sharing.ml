(* Web state sharing: the Fig. 7 scenario as a runnable demo.

   A client fetches the same 128 KB file five times from a plain server
   and then from a CM-enabled server.  The CM server's macroflow keeps
   the congestion window and RTT estimate between connections, so the
   later fetches skip slow start.

   Run with: dune exec examples/web_sharing.exe *)

open Cm_util
open Eventsim
open Netsim

let fetch_times ~use_cm =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:8e6 ~delay:(Time.ms 35) () in
  let driver =
    if use_cm then begin
      let cm = Cm.create engine () in
      Cm.attach cm net.Topology.b;
      Tcp.Conn.Cm_driven cm
    end
    else Tcp.Conn.Native
  in
  let _server = Cm_apps.Web.server net.Topology.b ~port:80 ~file_bytes:(128 * 1024) ~driver () in
  let results = ref [] in
  Cm_apps.Web.sequential_fetches net.Topology.a
    ~dst:(Addr.endpoint ~host:1 ~port:80)
    ~expect_bytes:(128 * 1024) ~count:5 ~gap:(Time.ms 500)
    ~on_done:(fun rs -> results := rs)
    ();
  Engine.run_for engine (Time.sec 10.);
  List.map (fun r -> Time.to_float_ms r.Cm_apps.Web.duration) !results

let () =
  let plain = fetch_times ~use_cm:false in
  let cm = fetch_times ~use_cm:true in
  Format.printf "fetch#   plain-server(ms)   cm-server(ms)@.";
  List.iteri
    (fun i (p, c) -> Format.printf "%-8d %18.1f %15.1f@." (i + 1) p c)
    (List.combine plain cm);
  let last xs = List.nth xs (List.length xs - 1) in
  Format.printf "@.later fetches are %.0f%% faster with the CM server@."
    ((last plain -. last cm) /. last plain *. 100.)
