(** Persistent-connection HTTP–style multiplexing (paper §6).

    The paper's related-work argument against application-level
    multiplexing (P-HTTP, SCP, MUX): putting logically independent
    streams on one TCP connection couples them — "if packets belonging to
    one stream are lost, another stream could stall even if none of its
    packets are lost because of the in-order 'linear' delivery forced by
    TCP".  The CM's answer is concurrent connections that {e share
    congestion state} instead of sharing a byte stream.

    This module implements both sides of that comparison:

    - {!phttp_transfer}: [n] logical objects sent back-to-back over one
      TCP connection (serialized, like HTTP/1.1 pipelining);
    - {!cm_transfer}: the same objects over [n] concurrent TCP/CM
      connections sharing one macroflow.

    Each returns per-object completion times, so head-of-line coupling is
    directly visible. *)

open Netsim

type result = {
  object_ms : float array;  (** Completion time of each logical object, ms. *)
  first_chunk_ms : float array;
      (** Time until each object's first 8 KB was deliverable — the
          progressive-rendering / parallelism-of-downloads metric. *)
  total_ms : float;  (** Time until every object completed. *)
}

val phttp_transfer :
  src:Host.t ->
  dst_host:Host.t ->
  port:int ->
  objects:int ->
  object_bytes:int ->
  ?config:Tcp.Conn.config ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Send [objects] objects of [object_bytes] each, serialized over one
    TCP connection.  Object [i] completes when the receiver has
    [(i+1)·object_bytes] in-order bytes. *)

val cm_transfer :
  src:Host.t ->
  dst_host:Host.t ->
  base_port:int ->
  cm:Cm.t ->
  objects:int ->
  object_bytes:int ->
  ?config:Tcp.Conn.config ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Send the same objects over [objects] concurrent TCP/CM connections
    (ports [base_port … base_port+objects-1]), all in one macroflow. *)
