open Cm_util
open Eventsim
open Netsim

let server host ~port ~file_bytes ?(driver = Tcp.Conn.Native) ?(config = Tcp.Conn.default_config)
    () =
  Tcp.Conn.listen host ~port ~driver ~config
    ~on_accept:(fun conn ->
      let responded = ref false in
      Tcp.Conn.on_receive conn (fun _n ->
          if not !responded then begin
            responded := true;
            Tcp.Conn.send conn file_bytes;
            Tcp.Conn.close conn
          end))
    ()

type fetch_result = { started_at : Time.t; duration : Time.span; bytes : int }

let fetch host ~dst ~expect_bytes ?(driver = Tcp.Conn.Native) ?(config = Tcp.Conn.default_config)
    ?(request_bytes = 100) ~on_done () =
  let engine = Host.engine host in
  let started_at = Engine.now engine in
  let conn = Tcp.Conn.connect host ~dst ~driver ~config () in
  let received = ref 0 in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      !finished |> ignore;
      finished := true;
      Tcp.Conn.close conn;
      on_done
        { started_at; duration = Time.diff (Engine.now engine) started_at; bytes = !received }
    end
  in
  Tcp.Conn.on_established conn (fun () -> Tcp.Conn.send conn request_bytes);
  Tcp.Conn.on_receive conn (fun n ->
      received := !received + n;
      if !received >= expect_bytes then finish ())

let sequential_fetches host ~dst ~expect_bytes ~count ~gap ?driver ?config ~on_done () =
  let engine = Host.engine host in
  let results = Array.make count None in
  let completed = ref 0 in
  let record i r =
    results.(i) <- Some r;
    incr completed;
    if !completed = count then
      on_done (Array.to_list results |> List.filter_map Fun.id)
  in
  for i = 0 to count - 1 do
    ignore
      (Engine.schedule_after engine (i * gap) (fun () ->
           fetch host ~dst ~expect_bytes ?driver ?config ~on_done:(record i) ()))
  done

let concurrent_fetches host ~dst ~expect_bytes ~count ?driver ?config ~on_done () =
  sequential_fetches host ~dst ~expect_bytes ~count ~gap:0 ?driver ?config ~on_done ()

let adaptive_server host ~cm ~port ~encodings ~target_latency ?(driver = Tcp.Conn.Native)
    ?(config = Tcp.Conn.default_config) () =
  if Array.length encodings = 0 then invalid_arg "Web.adaptive_server: need encodings";
  Tcp.Conn.listen host ~port ~driver ~config
    ~on_accept:(fun conn ->
      let responded = ref false in
      Tcp.Conn.on_receive conn (fun _n ->
          if not !responded then begin
            responded := true;
            let budget_bytes =
              match Tcp.Conn.cm_flow conn with
              | Some fid ->
                  let st = Cm.query cm fid in
                  if st.Cm.Cm_types.rate_bps <= 0. then encodings.(0)
                  else
                    int_of_float
                      (st.Cm.Cm_types.rate_bps /. 8. *. Time.to_float_s target_latency)
              | None -> encodings.(0)
            in
            let chosen = ref encodings.(0) in
            Array.iter (fun e -> if e <= budget_bytes then chosen := e) encodings;
            Tcp.Conn.send conn !chosen;
            Tcp.Conn.close conn
          end))
    ()
