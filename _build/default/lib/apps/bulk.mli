(** ttcp-like bulk transfer drivers (paper §4.1).

    Long unidirectional transfers used by the kernel-overhead experiments:
    a TCP sender pushing a given number of fixed-size buffers, and a
    congestion-controlled-UDP equivalent.  Each run reports completion
    time, goodput and CPU utilization of the sending host. *)

open Cm_util
open Netsim

type result = {
  transferred : int;  (** Payload bytes delivered to the receiving app. *)
  duration : Time.span;  (** First byte queued to last byte delivered. *)
  throughput_bps : float;  (** Goodput in bits per second. *)
  sender_cpu_utilization : float;  (** Busy fraction of the sending CPU. *)
}
(** Outcome of a bulk run. *)

val tcp_push :
  src:Host.t ->
  dst_host:Host.t ->
  port:int ->
  buffers:int ->
  buffer_bytes:int ->
  ?driver:Tcp.Conn.driver ->
  ?config:Tcp.Conn.config ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Send [buffers × buffer_bytes] over one TCP connection from [src] to a
    receiver created on [dst_host]:[port]; invoke [on_done] when the
    receiver has every byte. *)

val udp_cc_push :
  src:Host.t ->
  dst_host:Host.t ->
  port:int ->
  cm:Cm.t ->
  packets:int ->
  packet_bytes:int ->
  on_done:(result -> unit) ->
  unit ->
  unit
(** Same over a congestion-controlled UDP socket (buffered API), with the
    echo receiver providing feedback.  Completion fires when every packet
    has been transmitted and its fate resolved; [transferred] reports the
    bytes that actually arrived (UDP does not retransmit losses). *)
