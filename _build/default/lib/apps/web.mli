(** Web-like request/response workload over TCP (paper §4.3, Fig. 7).

    A server that answers any request with a fixed-size response and
    closes the connection, plus a client that measures per-request
    completion latency.  Used to reproduce the congestion-state sharing
    experiment: a client fetching the same file repeatedly with a fresh
    TCP connection each time either re-learns the path from scratch
    (TCP/Linux) or inherits the macroflow's window and RTT (TCP/CM). *)

open Cm_util
open Netsim

val server :
  Host.t -> port:int -> file_bytes:int -> ?driver:Tcp.Conn.driver -> ?config:Tcp.Conn.config -> unit -> Tcp.Conn.listener
(** Serve: on each accepted connection, wait for the first request bytes,
    send [file_bytes], then close. *)

type fetch_result = {
  started_at : Time.t;  (** When the connection attempt began. *)
  duration : Time.span;  (** Request start to last response byte. *)
  bytes : int;  (** Response bytes received. *)
}
(** Outcome of one fetch. *)

val fetch :
  Host.t ->
  dst:Addr.endpoint ->
  expect_bytes:int ->
  ?driver:Tcp.Conn.driver ->
  ?config:Tcp.Conn.config ->
  ?request_bytes:int ->
  on_done:(fetch_result -> unit) ->
  unit ->
  unit
(** One fetch: connect, send a [request_bytes] request (default 100),
    read until [expect_bytes] arrived, close, report. *)

val sequential_fetches :
  Host.t ->
  dst:Addr.endpoint ->
  expect_bytes:int ->
  count:int ->
  gap:Time.span ->
  ?driver:Tcp.Conn.driver ->
  ?config:Tcp.Conn.config ->
  on_done:(fetch_result list -> unit) ->
  unit ->
  unit
(** The Fig. 7 workload: [count] fetches of the same file, each started
    [gap] after the {e start} of the previous one (requests overlap if a
    fetch outlasts the gap).  [on_done] receives results in start order. *)

val concurrent_fetches :
  Host.t ->
  dst:Addr.endpoint ->
  expect_bytes:int ->
  count:int ->
  ?driver:Tcp.Conn.driver ->
  ?config:Tcp.Conn.config ->
  on_done:(fetch_result list -> unit) ->
  unit ->
  unit
(** The 4-parallel-connections browser pattern: all fetches start at
    once. *)

val adaptive_server :
  Host.t ->
  cm:Cm.t ->
  port:int ->
  encodings:int array ->
  target_latency:Time.span ->
  ?driver:Tcp.Conn.driver ->
  ?config:Tcp.Conn.config ->
  unit ->
  Tcp.Conn.listener
(** Content adaptation (§2.1.4, and the paper's title): on each request,
    query the CM for the flow's rate estimate and serve the largest
    encoding in [encodings] (ascending byte sizes — e.g. a large colour
    image down to a small grey-scale one) that the estimated rate can
    deliver within [target_latency]; when the CM has no estimate yet, the
    smallest encoding is served.  The response is followed by close, like
    {!server}. *)
