open Cm_util
open Eventsim
open Netsim

type vat_stats = {
  frames_in : int;
  policer_drops : int;
  buffer_drops : int;
  frames_sent : int;
}

type t = {
  libcm : Libcm.t;
  engine : Engine.t;
  socket : Udp.Socket.t;
  fid : Cm.Cm_types.flow_id;
  fb : Udp.Feedback.Sender.t;
  frame_bytes : int;
  frame_interval : Time.span;
  app_buffer_frames : int;
  headroom : float;
  buffer : int Byte_queue.t; (* frame sizes *)
  mutable clock : Timer.t;
  mutable running : bool;
  (* token-bucket policer *)
  mutable tokens : float;
  mutable policer_rate : float; (* bytes per second *)
  mutable last_refill : Time.t;
  mutable request_outstanding : bool;
  mutable s_frames_in : int;
  mutable s_policer_drops : int;
  mutable s_buffer_drops : int;
  mutable s_frames_sent : int;
}

let refill t =
  let now = Engine.now t.engine in
  let dt = Time.to_float_s (Time.diff now t.last_refill) in
  t.last_refill <- now;
  (* bucket depth: two frames of burst *)
  t.tokens <-
    Float.min (float_of_int (2 * t.frame_bytes)) (t.tokens +. (dt *. t.policer_rate))

let maybe_request t =
  if (not t.request_outstanding) && not (Byte_queue.is_empty t.buffer) then begin
    t.request_outstanding <- true;
    Libcm.request t.libcm t.fid
  end

let on_grant t _fid =
  t.request_outstanding <- false;
  match Byte_queue.pop t.buffer with
  | None -> Libcm.notify t.libcm t.fid ~nbytes:0
  | Some bytes ->
      let now = Engine.now t.engine in
      let seq = Udp.Feedback.Sender.on_transmit t.fb ~bytes in
      Libcm.app_send t.libcm ~bytes;
      Udp.Socket.send t.socket ~payload_bytes:bytes (Udp.Feedback.Data { seq; bytes; ts = now });
      t.s_frames_sent <- t.s_frames_sent + 1;
      maybe_request t

let frame_tick t =
  if t.running then begin
    t.s_frames_in <- t.s_frames_in + 1;
    refill t;
    let fb = float_of_int t.frame_bytes in
    if t.tokens >= fb then begin
      t.tokens <- t.tokens -. fb;
      (* drop-from-head if the application buffer is full *)
      if Byte_queue.length t.buffer >= t.app_buffer_frames then begin
        ignore (Byte_queue.drop_head t.buffer);
        t.s_buffer_drops <- t.s_buffer_drops + 1
      end;
      Byte_queue.push t.buffer ~size:t.frame_bytes t.frame_bytes;
      maybe_request t
    end
    else t.s_policer_drops <- t.s_policer_drops + 1;
    Timer.start t.clock t.frame_interval
  end

let on_rate_update t (st : Cm.Cm_types.status) =
  (* long-term adaptation: the policer enforces the CM's rate estimate *)
  refill t;
  t.policer_rate <- Float.max 1_000. (st.Cm.Cm_types.rate_bps /. 8. *. t.headroom)

let create libcm ~host ~dst ?(rate_bps = 64_000.) ?(frame_bytes = 160)
    ?(frame_interval = Time.ms 20) ?(app_buffer_frames = 10) ?(headroom = 0.95) () =
  let engine = Host.engine host in
  let socket = Udp.Socket.create host () in
  Udp.Socket.connect socket dst;
  let key = Addr.flow ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
  let fid = Libcm.open_flow libcm key in
  let t_ref = ref None in
  let fb =
    Udp.Feedback.Sender.create engine
      ~on_report:(fun r ->
        match !t_ref with
        | Some t when t.running ->
            Libcm.app_recv t.libcm ~bytes:32;
            Libcm.app_gettimeofday t.libcm;
            Libcm.app_gettimeofday t.libcm;
            Libcm.update t.libcm t.fid ~nsent:r.Udp.Feedback.nsent ~nrecd:r.Udp.Feedback.nrecd
              ~loss:r.Udp.Feedback.loss ?rtt:r.Udp.Feedback.rtt ()
        | _ -> ())
      ()
  in
  let t =
    {
      libcm;
      engine;
      socket;
      fid;
      fb;
      frame_bytes;
      frame_interval;
      app_buffer_frames;
      headroom;
      buffer = Byte_queue.create ();
      clock = Timer.create engine ~callback:(fun () -> ());
      running = false;
      tokens = float_of_int (2 * frame_bytes);
      policer_rate = rate_bps /. 8.;
      last_refill = Engine.now engine;
      request_outstanding = false;
      s_frames_in = 0;
      s_policer_drops = 0;
      s_buffer_drops = 0;
      s_frames_sent = 0;
    }
  in
  t_ref := Some t;
  t.clock <- Timer.create engine ~callback:(fun () -> frame_tick t);
  Udp.Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Udp.Feedback.Ack { max_seq; count; bytes; ts_echo } ->
          Udp.Feedback.Sender.on_ack t.fb ~max_seq ~count ~bytes ~ts_echo
      | _ -> ());
  Libcm.register_send libcm fid (fun fid -> on_grant t fid);
  Libcm.register_update libcm fid (fun st -> on_rate_update t st);
  Libcm.set_thresh libcm fid ~down:0.9 ~up:1.1;
  t

let start t =
  if not t.running then begin
    t.running <- true;
    t.last_refill <- Engine.now t.engine;
    frame_tick t
  end

let stop t =
  if t.running then begin
    t.running <- false;
    Timer.stop t.clock;
    Udp.Feedback.Sender.shutdown t.fb
  end

let stats t =
  {
    frames_in = t.s_frames_in;
    policer_drops = t.s_policer_drops;
    buffer_drops = t.s_buffer_drops;
    frames_sent = t.s_frames_sent;
  }

let policer_rate_bps t = t.policer_rate *. 8.

module Receiver = struct
  type r = {
    engine : Engine.t;
    fb_recv : Udp.Feedback.Receiver.t;
    playout_delay : Time.span;
    frame_interval : Time.span;
    mutable frames : int;
    mutable first_seq : int;
    mutable playout_base : Time.t; (* playout time of frame [first_seq] *)
    mutable on_time : int;
    mutable late : int;
    delays : Stats.t;
    delivered : Timeline.t;
  }

  let create host ~port ?(playout_delay = Time.ms 100) ?(frame_interval = Time.ms 20) () =
    let engine = Host.engine host in
    let socket = Udp.Socket.create host ~port () in
    let last_src = ref None in
    let receiver = ref None in
    let fb_recv =
      Udp.Feedback.Receiver.create engine
        ~send_ack:(fun ~max_seq ~count ~bytes ~ts_echo ->
          match !last_src with
          | Some dst ->
              Udp.Socket.sendto socket ~dst ~payload_bytes:32
                (Udp.Feedback.Ack { max_seq; count; bytes; ts_echo })
          | None -> ())
        ()
    in
    let r =
      {
        engine;
        fb_recv;
        playout_delay;
        frame_interval;
        frames = 0;
        first_seq = -1;
        playout_base = 0;
        on_time = 0;
        late = 0;
        delays = Stats.create ();
        delivered = Timeline.create ();
      }
    in
    receiver := Some r;
    Udp.Socket.on_receive socket (fun pkt ->
        match pkt.Packet.payload with
        | Udp.Feedback.Data { seq; bytes; ts } ->
            last_src := Some pkt.Packet.flow.Addr.src;
            r.frames <- r.frames + 1;
            let now = Engine.now engine in
            Stats.add r.delays (Time.to_float_ms (Time.diff now ts));
            Timeline.record r.delivered now (float_of_int bytes);
            (* playout clock: the first frame anchors the schedule; frame k
               must arrive before its slot [base + (k - first)·interval] or
               it misses playout *)
            if r.first_seq < 0 then begin
              r.first_seq <- seq;
              r.playout_base <- Time.add now r.playout_delay
            end;
            let slot =
              Time.add r.playout_base ((seq - r.first_seq) * r.frame_interval)
            in
            if now <= slot then r.on_time <- r.on_time + 1 else r.late <- r.late + 1;
            Udp.Feedback.Receiver.on_data fb_recv ~seq ~bytes ~ts
        | _ -> ());
    r

  let frames_received r = r.frames
  let delay_stats r = r.delays
  let delivered_timeline r = r.delivered
  let playout_on_time r = r.on_time
  let playout_late r = r.late
end
