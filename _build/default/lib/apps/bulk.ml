open Cm_util
open Eventsim
open Netsim

type result = {
  transferred : int;
  duration : Time.span;
  throughput_bps : float;
  sender_cpu_utilization : float;
}

let finish ~engine ~src ~t0 ~busy0 ~bytes ~on_done =
  let duration = Stdlib.max 1 (Time.diff (Engine.now engine) t0) in
  let busy = Cpu.total_busy (Host.cpu src) - busy0 in
  on_done
    {
      transferred = bytes;
      duration;
      throughput_bps = float_of_int (bytes * 8) /. Time.to_float_s duration;
      sender_cpu_utilization = float_of_int busy /. float_of_int duration;
    }

let tcp_push ~src ~dst_host ~port ~buffers ~buffer_bytes ?(driver = Tcp.Conn.Native)
    ?(config = Tcp.Conn.default_config) ~on_done () =
  let engine = Host.engine src in
  let total = buffers * buffer_bytes in
  let t0 = Engine.now engine in
  let busy0 = Cpu.total_busy (Host.cpu src) in
  let received = ref 0 in
  let done_ = ref false in
  let _listener =
    Tcp.Conn.listen dst_host ~port
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun n ->
            received := !received + n;
            if (not !done_) && !received >= total then begin
              done_ := true;
              finish ~engine ~src ~t0 ~busy0 ~bytes:total ~on_done
            end))
      ()
  in
  let conn =
    Tcp.Conn.connect src ~dst:(Addr.endpoint ~host:(Host.id dst_host) ~port) ~driver ~config ()
  in
  (* the app writes all buffers up front (ttcp keeps the pipe full; the
     socket buffer model has no backpressure to exercise here) *)
  Tcp.Conn.send conn total;
  Tcp.Conn.close conn

let udp_cc_push ~src ~dst_host ~port ~cm ~packets ~packet_bytes ~on_done () =
  let engine = Host.engine src in
  let t0 = Engine.now engine in
  let busy0 = Cpu.total_busy (Host.cpu src) in
  let receiver = Udp.Cc_socket.run_echo_receiver dst_host ~port () in
  let socket =
    Udp.Cc_socket.create src ~cm ~dst:(Addr.endpoint ~host:(Host.id dst_host) ~port) ()
  in
  let queued = ref 0 in
  (* feed the socket in bounded batches so its kernel buffer never
     overflows *)
  let rec feeder () =
    let room = 64 - Udp.Cc_socket.queued socket in
    let batch = Stdlib.min room (packets - !queued) in
    for _ = 1 to batch do
      Udp.Cc_socket.send socket packet_bytes;
      incr queued
    done;
    if !queued < packets then ignore (Engine.schedule_after engine (Time.ms 10) feeder)
  in
  feeder ();
  (* completion: every datagram transmitted and its fate resolved by
     feedback.  Datagrams lost in the network stay lost (UDP does not
     retransmit); [transferred] reports what actually arrived. *)
  let poll = ref None in
  let check () =
    if
      !queued >= packets
      && Udp.Cc_socket.queued socket = 0
      && Udp.Cc_socket.packets_sent socket >= packets
      && Udp.Cc_socket.unresolved_packets socket = 0
    then begin
      (match !poll with Some timer -> Timer.stop timer | None -> ());
      let received = Udp.Feedback.Receiver.bytes_received receiver in
      Udp.Cc_socket.close socket;
      finish ~engine ~src ~t0 ~busy0 ~bytes:received ~on_done
    end
  in
  let timer = Timer.create engine ~callback:check in
  poll := Some timer;
  Timer.start_periodic timer (Time.ms 20)
