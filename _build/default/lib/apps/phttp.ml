open Cm_util
open Eventsim
open Netsim

type result = {
  object_ms : float array;
  first_chunk_ms : float array; (* time to each object's first 8 KB *)
  total_ms : float;
}

let chunk_bytes = 8 * 1024

let phttp_transfer ~src ~dst_host ~port ~objects ~object_bytes
    ?(config = Tcp.Conn.default_config) ~on_done () =
  let engine = Host.engine src in
  let t0 = Engine.now engine in
  let object_ms = Array.make objects nan in
  let first_chunk_ms = Array.make objects nan in
  let received = ref 0 in
  let finished = ref 0 in
  let _listener =
    Tcp.Conn.listen dst_host ~port ~config
      ~on_accept:(fun conn ->
        Tcp.Conn.on_receive conn (fun n ->
            received := !received + n;
            let now_ms = Time.to_float_ms (Time.diff (Engine.now engine) t0) in
            (* in-order byte stream: object i's bytes only become available
               once everything before them has arrived — the coupling
               under test *)
            Array.iteri
              (fun i v ->
                if Float.is_nan v && !received >= (i * object_bytes) + chunk_bytes then
                  first_chunk_ms.(i) <- now_ms)
              first_chunk_ms;
            while
              !finished < objects && !received >= (!finished + 1) * object_bytes
            do
              object_ms.(!finished) <- now_ms;
              incr finished;
              if !finished = objects then
                on_done { object_ms; first_chunk_ms; total_ms = now_ms }
            done))
      ()
  in
  let conn = Tcp.Conn.connect src ~dst:(Addr.endpoint ~host:(Host.id dst_host) ~port) ~config () in
  (* all objects are available immediately and sent back to back *)
  Tcp.Conn.send conn (objects * object_bytes);
  Tcp.Conn.close conn

let cm_transfer ~src ~dst_host ~base_port ~cm ~objects ~object_bytes
    ?(config = Tcp.Conn.default_config) ~on_done () =
  let engine = Host.engine src in
  let t0 = Engine.now engine in
  let object_ms = Array.make objects nan in
  let first_chunk_ms = Array.make objects nan in
  let finished = ref 0 in
  for i = 0 to objects - 1 do
    let port = base_port + i in
    let received = ref 0 in
    let _listener =
      Tcp.Conn.listen dst_host ~port ~config
        ~on_accept:(fun conn ->
          Tcp.Conn.on_receive conn (fun n ->
              received := !received + n;
              let now_ms = Time.to_float_ms (Time.diff (Engine.now engine) t0) in
              if Float.is_nan first_chunk_ms.(i) && !received >= chunk_bytes then
                first_chunk_ms.(i) <- now_ms;
              if !received >= object_bytes && Float.is_nan object_ms.(i) then begin
                object_ms.(i) <- now_ms;
                incr finished;
                if !finished = objects then
                  on_done { object_ms; first_chunk_ms; total_ms = now_ms }
              end))
        ()
    in
    let conn =
      Tcp.Conn.connect src
        ~dst:(Addr.endpoint ~host:(Host.id dst_host) ~port)
        ~driver:(Tcp.Conn.Cm_driven cm) ~config ()
    in
    Tcp.Conn.send conn object_bytes;
    Tcp.Conn.close conn
  done
