(** vat-style interactive real-time audio (paper §3.6, Fig. 2).

    A constant-bit-rate audio source that cannot downsample, so the only
    adaptation lever is {e preemptive packet dropping}: the input stream
    passes through a policer (token bucket refilled at the CM-reported
    rate), then an application-level buffer with drop-from-head behaviour
    (long FIFO kernel queues are poison for interactive audio), and
    finally the CM-paced kernel buffer via the request/callback API. *)

open Cm_util
open Netsim

type t
(** A vat sender. *)

type vat_stats = {
  frames_in : int;  (** Frames produced by the audio source. *)
  policer_drops : int;  (** Frames preemptively dropped by the policer. *)
  buffer_drops : int;  (** Frames dropped from the head of the app buffer. *)
  frames_sent : int;  (** Frames handed to the network. *)
}
(** Sender-side accounting. *)

val create :
  Libcm.t ->
  host:Host.t ->
  dst:Addr.endpoint ->
  ?rate_bps:float ->
  ?frame_bytes:int ->
  ?frame_interval:Time.span ->
  ?app_buffer_frames:int ->
  ?headroom:float ->
  unit ->
  t
(** [create libcm ~host ~dst ()] builds a 64 kbit/s source (160-byte
    frames every 20 ms) with a 10-frame drop-from-head application buffer.
    [headroom] scales the CM rate fed to the policer (default 0.95). *)

val start : t -> unit
(** Start the audio clock. *)

val stop : t -> unit
(** Stop the source. *)

val stats : t -> vat_stats
(** Snapshot of the sender counters. *)

val policer_rate_bps : t -> float
(** The rate the policer is currently enforcing. *)

(** Receiving side: plays out frames and measures quality. *)
module Receiver : sig
  type r
  (** A vat receiver bound to a port. *)

  val create :
    Host.t -> port:int -> ?playout_delay:Time.span -> ?frame_interval:Time.span -> unit -> r
  (** Listen for vat frames, acknowledge each one (providing the CM
      feedback), record one-way delays, and run a playout clock: the
      first frame anchors a schedule of one slot per [frame_interval]
      (default 20 ms) offset by [playout_delay] (default 100 ms); frames
      arriving after their slot miss playout. *)

  val frames_received : r -> int
  (** Frames that arrived. *)

  val delay_stats : r -> Stats.t
  (** One-way frame delays, in milliseconds. *)

  val delivered_timeline : r -> Timeline.t
  (** Event log (value = frame bytes) for delivered-rate plots. *)

  val playout_on_time : r -> int
  (** Frames that arrived before their playout slot. *)

  val playout_late : r -> int
  (** Frames that missed their playout slot (inaudible). *)
end
