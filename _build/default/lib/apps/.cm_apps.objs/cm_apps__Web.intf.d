lib/apps/web.mli: Addr Cm Cm_util Host Netsim Tcp Time
