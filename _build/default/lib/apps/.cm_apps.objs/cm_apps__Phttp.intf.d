lib/apps/phttp.mli: Cm Host Netsim Tcp
