lib/apps/bulk.mli: Cm Cm_util Host Netsim Tcp Time
