lib/apps/layered.ml: Addr Array Cm Cm_util Engine Eventsim Float Host Libcm Netsim Packet Stdlib Time Timeline Timer Udp
