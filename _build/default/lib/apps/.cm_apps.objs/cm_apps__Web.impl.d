lib/apps/web.ml: Array Cm Cm_util Engine Eventsim Fun Host List Netsim Tcp Time
