lib/apps/bulk.ml: Addr Cm_util Cpu Engine Eventsim Host Netsim Stdlib Tcp Time Timer Udp
