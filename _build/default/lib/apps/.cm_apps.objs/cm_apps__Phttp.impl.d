lib/apps/phttp.ml: Addr Array Cm_util Engine Eventsim Float Host Netsim Tcp Time
