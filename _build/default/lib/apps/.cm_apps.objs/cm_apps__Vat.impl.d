lib/apps/vat.ml: Addr Byte_queue Cm Cm_util Engine Eventsim Float Host Libcm Netsim Packet Stats Time Timeline Timer Udp
