lib/apps/layered.mli: Addr Cm Cm_util Host Libcm Netsim Time Timeline
