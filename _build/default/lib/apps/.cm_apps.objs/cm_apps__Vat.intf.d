lib/apps/vat.mli: Addr Cm_util Host Libcm Netsim Stats Time Timeline
