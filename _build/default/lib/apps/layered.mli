(** Layered streaming audio/video source (paper §3.4, Figs. 8–9).

    A source with a fixed set of cumulative encoding rates ("layers") that
    adapts which layer it transmits to the CM's estimate of available
    bandwidth, in one of the paper's two styles:

    - {b ALF} (request/callback): every packet is individually requested
      from the CM and the layer is chosen per-packet from [cm_query] —
      maximal responsiveness, maximal API overhead;
    - {b Rate callback}: the app runs its own transmission clock at the
      current layer's rate and changes layer only when the CM's
      [cmapp_update] callback (gated by [cm_thresh]) reports a
      significant rate change.

    Both styles are user-space clients: all CM interaction goes through
    {!Libcm} and is charged to the host CPU, and receiver feedback uses
    the application-level {!Udp.Feedback} protocol. *)

open Cm_util
open Netsim

type mode =
  | Alf  (** Request/callback, per-packet adaptation. *)
  | Rate_callback of { down : float; up : float }
      (** Self-clocked; layer changes on threshold crossings. *)

type t
(** A running (or stopped) source. *)

val create :
  Libcm.t ->
  host:Host.t ->
  dst:Addr.endpoint ->
  layers:float array ->
  mode:mode ->
  ?packet_bytes:int ->
  ?pipeline:int ->
  ?headroom:float ->
  ?feedback_timeout:Time.span ->
  unit ->
  t
(** [create libcm ~host ~dst ~layers ~mode ()] builds a source sending to
    [dst] (where a {!Udp.Cc_socket.run_echo_receiver}-style acknowledger
    must run).  [layers] are cumulative rates in bits/s, ascending.
    [packet_bytes] is the frame size (default 1000); [pipeline] the number
    of outstanding ALF requests kept open (default 4); [headroom] the
    fraction of the reported rate the source dares to use (default 0.9);
    [feedback_timeout] the silence interval after which outstanding data is
    declared lost (raise it when the receiver batches feedback). *)

val start : t -> unit
(** Begin transmitting (idempotent). *)

val stop : t -> unit
(** Stop transmitting and feedback processing. *)

val current_layer : t -> int
(** Index of the layer currently transmitted (-1 before any estimate). *)

val packets_sent : t -> int
(** Data packets transmitted. *)

val bytes_sent : t -> int
(** Payload bytes transmitted. *)

val tx_timeline : t -> Timeline.t
(** Event log of transmissions (value = payload bytes) for rate plots. *)

val rate_timeline : t -> Timeline.t
(** Samples of the CM-reported per-flow rate (bits/s). *)

val layer_timeline : t -> Timeline.t
(** Samples of the chosen layer's cumulative rate (bits/s). *)

val flow : t -> Cm.Cm_types.flow_id
(** The CM flow id. *)
