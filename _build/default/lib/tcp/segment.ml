open Cm_util

type t = {
  seq : int;
  len : int;
  syn : bool;
  fin : bool;
  ack : bool;
  ack_seq : int;
  wnd : int;
  ts_val : Time.t;
  ts_ecr : Time.t;
  ece : bool;
  sacks : (int * int) list;
}

type Netsim.Packet.payload += Tcp_seg of t

let seg_end s = s.seq + s.len + (if s.syn then 1 else 0) + if s.fin then 1 else 0

let pp fmt s =
  Format.fprintf fmt "seq=%d len=%d%s%s%s%s wnd=%d%s" s.seq s.len
    (if s.syn then " SYN" else "")
    (if s.fin then " FIN" else "")
    (if s.ack then Printf.sprintf " ack=%d" s.ack_seq else "")
    (if s.ece then " ECE" else "")
    s.wnd
    (match s.sacks with
    | [] -> ""
    | blocks ->
        " sack="
        ^ String.concat ","
            (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) blocks))
