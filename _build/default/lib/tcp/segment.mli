(** TCP segments.

    The wire format carried in {!Netsim.Packet} payloads: sequence/ack
    numbers, flags, advertised window, RFC 1323 timestamps, and the ECN
    echo bit.  Data is represented by its length only; sequence-number
    arithmetic is exact. *)

open Cm_util

type t = {
  seq : int;  (** Sequence number of the first payload byte (or of SYN/FIN). *)
  len : int;  (** Payload length in bytes. *)
  syn : bool;
  fin : bool;
  ack : bool;
  ack_seq : int;  (** Cumulative acknowledgment (valid when [ack]). *)
  wnd : int;  (** Advertised receive window, bytes. *)
  ts_val : Time.t;  (** Sender timestamp (RFC 1323 TSval); 0 if unused. *)
  ts_ecr : Time.t;  (** Echoed peer timestamp (TSecr); 0 if none. *)
  ece : bool;  (** ECN-echo: receiver saw a CE mark. *)
  sacks : (int * int) list;
      (** SACK blocks (RFC 2018): up to three [start, stop) ranges of
          out-of-order data the receiver holds. *)
}
(** One TCP segment. *)

type Netsim.Packet.payload += Tcp_seg of t
      (** Extensible payload constructor registered with the network layer. *)

val seg_end : t -> int
(** [seg_end s] is the sequence number just past this segment, counting
    SYN and FIN as one unit each. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering like [seq=4344 len=1448 ack=1 A] for traces. *)
