lib/tcp/segment.ml: Cm_util Format List Netsim Printf String Time
