lib/tcp/conn.ml: Addr Cm Cm_util Costs Cpu Engine Eventsim Host List Logs Netsim Packet Rto Segment Stdlib Time Timer
