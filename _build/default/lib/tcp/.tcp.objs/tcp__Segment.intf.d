lib/tcp/segment.mli: Cm_util Format Netsim Time
