lib/tcp/conn.mli: Addr Cm Cm_util Host Netsim Time
