lib/tcp/rto.ml: Cm_util Float Stdlib Time
