lib/tcp/rto.mli: Cm_util Time
