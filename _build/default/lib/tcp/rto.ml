open Cm_util

type t = {
  min_rto : Time.span;
  max_rto : Time.span;
  mutable srtt : float;
  mutable rttvar : float;
  mutable valid : bool;
  mutable shift : int; (* backoff exponent *)
}

let initial_rto = Time.ms 1_000

let create ?(min_rto = Time.ms 200) ?(max_rto = Time.sec 120.) () =
  { min_rto; max_rto; srtt = 0.; rttvar = 0.; valid = false; shift = 0 }

let observe t sample =
  if sample <= 0 then invalid_arg "Rto.observe: sample must be positive";
  let s = float_of_int sample in
  if not t.valid then begin
    t.srtt <- s;
    t.rttvar <- s /. 2.;
    t.valid <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. s));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. s)
  end;
  t.shift <- 0

let base_rto t =
  if not t.valid then initial_rto
  else begin
    let r = int_of_float (t.srtt +. Float.max (4. *. t.rttvar) 1e6) in
    Stdlib.max t.min_rto r
  end

let rto t =
  let r = base_rto t lsl t.shift in
  Stdlib.min t.max_rto (Stdlib.max t.min_rto r)

let backoff t = if t.shift < 12 then t.shift <- t.shift + 1
let srtt t = if t.valid then Some (int_of_float t.srtt) else None
let rttvar t = if t.valid then Some (int_of_float t.rttvar) else None
let reset_backoff t = t.shift <- 0
