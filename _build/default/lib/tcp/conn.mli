(** TCP connections.

    A full sender/receiver implementation driven by the simulation engine:
    three-way handshake, cumulative ACKs with delayed-ACK policy,
    out-of-order reassembly, RFC 1323 timestamps for RTT sampling, fast
    retransmit / NewReno-style recovery, retransmission timeouts with
    exponential backoff, FIN teardown with TIME-WAIT, and optional ECN.

    Congestion control is pluggable between:
    - {!Native}: self-contained Reno/NewReno mirroring the paper's
      TCP/Linux baseline (initial window 2 segments, ACK counting);
    - {!Cm_driven}: the paper's TCP/CM — all congestion control offloaded
      to the Congestion Manager through the request/callback API, with
      [cm_update] feedback on ACKs, dupacks and timeouts (§3.2).

    Application data is modeled as byte counts; sequence-number arithmetic,
    reassembly and acknowledgment generation are exact. *)

open Cm_util
open Netsim

type driver =
  | Native  (** Self-contained Reno/NewReno congestion control. *)
  | Cm_driven of Cm.t  (** Offload congestion control to this CM. *)

type config = {
  mss : int;  (** Max payload per segment (default 1448). *)
  rwnd : int;  (** Advertised receive window, bytes (default 1 MiB). *)
  delayed_acks : bool;  (** ACK every 2nd segment + 200 ms timer (default true). *)
  delack_timeout : Time.span;  (** Delayed-ACK timer (default 200 ms). *)
  initial_window_pkts : int;
      (** Native initial window in segments (default 2, like the paper's
          Linux; the CM driver ignores this — the CM starts at 1). *)
  nagle : bool;  (** Nagle's algorithm (default false: bulk senders). *)
  timestamps : bool;  (** RFC 1323 timestamps; without them Karn's rule is used. *)
  ecn : bool;  (** Negotiate ECN and react to echoes (default false). *)
  sack : bool;
      (** Selective acknowledgments (RFC 2018), as Linux 2.2 shipped:
          recovery retransmits only unSACKed holes (default true). *)
  min_rto : Time.span;  (** RTO floor (default 200 ms). *)
  msl : Time.span;  (** TIME-WAIT = 2·MSL (default MSL 1 s, sim-scaled). *)
}
(** Connection parameters. *)

val default_config : config
(** The defaults documented per field above. *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait
      (** RFC 793 connection states. *)

type t
(** A connection endpoint. *)

type stats = {
  bytes_sent : int;  (** Unique payload bytes transmitted at least once. *)
  bytes_acked : int;  (** Payload bytes cumulatively acknowledged. *)
  bytes_delivered : int;  (** In-order payload bytes handed to the app (receiver side). *)
  segments_out : int;  (** Data segments transmitted, including retransmissions. *)
  acks_out : int;  (** Pure ACK segments transmitted. *)
  retransmits : int;  (** Data segments retransmitted. *)
  fast_retransmits : int;  (** Fast-retransmit events. *)
  timeouts : int;  (** Retransmission-timer expiries. *)
  rtt_samples : int;  (** RTT samples folded into the estimator. *)
}
(** Cumulative counters. *)

val connect : Host.t -> dst:Addr.endpoint -> ?driver:driver -> ?config:config -> unit -> t
(** Active open: allocates an ephemeral port, sends the SYN (with
    retransmission), and — for {!Cm_driven} — performs [cm_open].
    The returned connection is in {!Syn_sent}. *)

type listener
(** A passive endpoint accepting connections on a port. *)

val listen :
  Host.t ->
  port:int ->
  ?driver:driver ->
  ?config:config ->
  on_accept:(t -> unit) ->
  unit ->
  listener
(** Passive open: accepts any number of connections; [on_accept] fires
    when each reaches {!Established}. *)

val stop_listening : listener -> unit
(** Unbind the listening port (existing connections are unaffected). *)

val send : t -> int -> unit
(** Queue [n] more bytes of application data for transmission. *)

val close : t -> unit
(** No more application data: send FIN after queued data drains. *)

val abort : t -> unit
(** Drop straight to {!Closed}, releasing demux entries and CM state. *)

val on_receive : t -> (int -> unit) -> unit
(** Called with byte counts as in-order data is delivered to the app. *)

val set_consume_rate : t -> float option -> unit
(** Model a finite application reader: with [Some bytes_per_second],
    in-order data sits in the receive buffer (shrinking the advertised
    window) until consumed at that rate; [None] (the default) consumes
    instantly.  A window that closes entirely engages the sender's
    persist timer (zero-window probes with exponential backoff). *)

val receive_buffered : t -> int
(** Bytes waiting in the receive buffer (0 with an infinite consumer). *)

val on_established : t -> (unit -> unit) -> unit
(** Called once when the handshake completes. *)

val on_closed : t -> (unit -> unit) -> unit
(** Called once when the connection reaches {!Closed} (after TIME-WAIT). *)

val state : t -> state
(** Current protocol state. *)

val stats : t -> stats
(** Counter snapshot. *)

val srtt : t -> Time.span option
(** Connection's smoothed RTT estimate (local estimator; the CM keeps its
    own shared estimate). *)

val cwnd : t -> int
(** Effective congestion window in bytes: the native controller's window,
    or the CM macroflow's window for {!Cm_driven}. *)

val bytes_unacked : t -> int
(** [snd_nxt − snd_una] in payload bytes. *)

val local : t -> Addr.endpoint
(** Local endpoint (host id, port). *)

val remote : t -> Addr.endpoint
(** Remote endpoint. *)

val cm_flow : t -> Cm.Cm_types.flow_id option
(** The CM flow id backing a {!Cm_driven} connection. *)
