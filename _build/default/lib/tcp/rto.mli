(** Retransmission-timeout estimation (RFC 6298 / Jacobson-Karels).

    Maintains the smoothed RTT and its mean deviation, produces the RTO
    with exponential backoff, and implements Karn's rule (callers simply
    refrain from feeding samples taken from retransmitted segments). *)

open Cm_util

type t
(** Estimator state. *)

val create : ?min_rto:Time.span -> ?max_rto:Time.span -> unit -> t
(** Fresh estimator.  Before any sample the RTO is a conservative 1 s
    (the RFC 6298 initial 3 s is shortened for simulation-scale runs
    but remains configurable through [min_rto]).  Defaults:
    [min_rto] 200 ms (Linux), [max_rto] 120 s. *)

val observe : t -> Time.span -> unit
(** Fold in a fresh RTT sample (never from a retransmitted segment —
    Karn's algorithm) and clear any backoff. *)

val rto : t -> Time.span
(** Current retransmission timeout, including backoff. *)

val backoff : t -> unit
(** Double the RTO (timer expiry). *)

val srtt : t -> Time.span option
(** Smoothed RTT, if at least one sample has been folded in. *)

val rttvar : t -> Time.span option
(** RTT mean deviation. *)

val reset_backoff : t -> unit
(** Clear exponential backoff without a new sample. *)
