(** User/kernel boundary operations and their metering.

    Every call a user-space CM client makes crosses the kernel boundary
    somewhere: a socket syscall, a [select], an [ioctl] on the CM control
    socket, a clock read.  {!Meter} counts them per kind and charges their
    cost-model time to the host CPU — the instrumentation behind Fig. 5,
    Fig. 6 and Table 1. *)

open Cm_util
open Netsim

type kind =
  | Send  (** [send]/[sendto] syscall, incl. the outbound data copy. *)
  | Recv  (** [recv] syscall, incl. the inbound data copy. *)
  | Select  (** One [select] wakeup. *)
  | Ioctl_request  (** [cm_request] via control-socket ioctl. *)
  | Ioctl_notify  (** Explicit [cm_notify] ioctl (unconnected sockets). *)
  | Ioctl_update  (** [cm_update] ioctl. *)
  | Ioctl_query  (** [cm_query] / ready-flow-extraction ioctl. *)
  | Gettimeofday  (** Clock read for RTT computation. *)
  | Sigio  (** SIGIO delivery to the process. *)

val all : kind list
(** Every kind, in display order. *)

val to_string : kind -> string
(** Short label, e.g. ["select"]. *)

type meter
(** Per-process operation counters bound to a host CPU. *)

val meter : Host.t -> meter
(** A fresh meter charging the host's CPU using its cost profile. *)

val charge : meter -> ?bytes:int -> ?nfds:int -> kind -> unit
(** Count one operation and charge its cost to the CPU: [bytes] adds the
    per-byte copy cost for [Send]/[Recv]; [nfds] scales a [Select] by its
    descriptor-set size (default 2). *)

val charge_deferred : meter -> ?bytes:int -> ?nfds:int -> kind -> (unit -> unit) -> unit
(** Like {!charge} but runs the continuation when the CPU has actually
    executed the operation (serializing behind earlier work). *)

val count : meter -> kind -> int
(** Operations counted so far for the kind. *)

val total : meter -> int
(** All operations counted. *)

val reset : meter -> unit
(** Zero the counters (CPU busy time is not rolled back). *)

val cost_of : Costs.t -> ?bytes:int -> ?nfds:int -> kind -> Time.span
(** The cost-model time for one operation of this kind. *)
