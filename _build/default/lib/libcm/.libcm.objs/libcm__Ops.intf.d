lib/libcm/ops.mli: Cm_util Costs Host Netsim Time
