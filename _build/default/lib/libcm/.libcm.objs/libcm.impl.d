lib/libcm/libcm.ml: Cm Cm_util Eventsim Hashtbl Host List Netsim Ops Queue Time Timer
