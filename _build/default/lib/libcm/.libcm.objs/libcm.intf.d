lib/libcm/libcm.mli: Addr Cm Cm_util Host Netsim Ops Time
