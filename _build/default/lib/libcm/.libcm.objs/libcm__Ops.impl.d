lib/libcm/ops.ml: Costs Cpu Hashtbl Host Netsim Option
