open Netsim

type kind =
  | Send
  | Recv
  | Select
  | Ioctl_request
  | Ioctl_notify
  | Ioctl_update
  | Ioctl_query
  | Gettimeofday
  | Sigio

let all =
  [ Send; Recv; Select; Ioctl_request; Ioctl_notify; Ioctl_update; Ioctl_query; Gettimeofday; Sigio ]

let to_string = function
  | Send -> "send"
  | Recv -> "recv"
  | Select -> "select"
  | Ioctl_request -> "ioctl(request)"
  | Ioctl_notify -> "ioctl(notify)"
  | Ioctl_update -> "ioctl(update)"
  | Ioctl_query -> "ioctl(query)"
  | Gettimeofday -> "gettimeofday"
  | Sigio -> "sigio"

let cost_of (c : Costs.t) ?(bytes = 0) ?(nfds = 2) = function
  | Send -> c.Costs.syscall + Costs.copy c bytes
  | Recv -> c.Costs.syscall + Costs.copy c bytes
  | Select -> Costs.select c ~nfds
  | Ioctl_request | Ioctl_notify | Ioctl_update | Ioctl_query -> c.Costs.ioctl
  | Gettimeofday -> c.Costs.gettimeofday
  | Sigio -> c.Costs.signal_delivery

type meter = { host : Host.t; counts : (kind, int) Hashtbl.t }

let meter host = { host; counts = Hashtbl.create 16 }

let bump m kind =
  let c = Option.value (Hashtbl.find_opt m.counts kind) ~default:0 in
  Hashtbl.replace m.counts kind (c + 1)

let charge m ?bytes ?nfds kind =
  bump m kind;
  let cost = cost_of (Host.costs m.host) ?bytes ?nfds kind in
  if cost > 0 then Cpu.charge (Host.cpu m.host) cost

let charge_deferred m ?bytes ?nfds kind fn =
  bump m kind;
  let cost = cost_of (Host.costs m.host) ?bytes ?nfds kind in
  Cpu.run (Host.cpu m.host) ~cost fn

let count m kind = Option.value (Hashtbl.find_opt m.counts kind) ~default:0
let total m = Hashtbl.fold (fun _ c acc -> acc + c) m.counts 0
let reset m = Hashtbl.reset m.counts
