open Cm_util

type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable handle : Engine.handle option;
  mutable expiry : Time.t option;
  mutable period : Time.span option;
}

let create engine ~callback = { engine; callback; handle = None; expiry = None; period = None }

let stop t =
  (match t.handle with Some h -> ignore (Engine.cancel t.engine h) | None -> ());
  t.handle <- None;
  t.expiry <- None;
  t.period <- None

let rec arm t delay =
  let fire () =
    t.handle <- None;
    t.expiry <- None;
    (match t.period with Some p -> arm t p | None -> ());
    t.callback ()
  in
  let when_ = Time.add (Engine.now t.engine) (Stdlib.max delay 0) in
  t.handle <- Some (Engine.schedule_at t.engine when_ fire);
  t.expiry <- Some when_

let start t delay =
  stop t;
  arm t delay

let start_periodic t period =
  if period <= 0 then invalid_arg "Timer.start_periodic: period must be positive";
  stop t;
  t.period <- Some period;
  arm t period

let is_running t = t.handle <> None
let expiry t = t.expiry
