lib/eventsim/engine.mli: Cm_util Time
