lib/eventsim/timer.mli: Cm_util Engine Time
