lib/eventsim/sim_log.mli: Engine Logs
