lib/eventsim/engine.ml: Cm_util Format Fun Heap Stdlib Time
