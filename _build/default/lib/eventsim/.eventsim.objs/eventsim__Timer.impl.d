lib/eventsim/timer.ml: Cm_util Engine Stdlib Time
