lib/eventsim/sim_log.ml: Cm_util Engine Format Hashtbl Logs Time
