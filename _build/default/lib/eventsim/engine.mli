(** Discrete-event simulation engine.

    A single-threaded event loop over virtual time: callbacks are scheduled
    at absolute timestamps and executed in timestamp order (FIFO among
    equal timestamps).  All simulated subsystems — links, timers, CPUs,
    protocol state machines — are driven from one engine, which makes every
    run fully deterministic. *)

open Cm_util

type t
(** An engine instance. *)

type handle
(** Names a scheduled event so it can be cancelled. *)

val create : ?start:Time.t -> unit -> t
(** [create ()] is a fresh engine with the clock at [start]
    (default {!Time.zero}). *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t when_ f] runs [f] when the clock reaches [when_].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t d f] is [schedule_at t (now t + max d 0) f]. *)

val cancel : t -> handle -> bool
(** Cancel a pending event; [false] if it already ran or was cancelled. *)

val pending : t -> int
(** Number of events still queued. *)

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val run : ?until:Time.t -> t -> unit
(** Run events in order.  With [until], stop once the next event would be
    strictly after [until] and advance the clock to [until]; without it,
    run until the queue drains. *)

val run_for : t -> Time.span -> unit
(** [run_for t d] is [run ~until:(now t + d) t]. *)

val events_executed : t -> int
(** Total number of callbacks executed (diagnostics, bench). *)
