(** Restartable one-shot and periodic timers on top of {!Engine}.

    Protocol code (TCP retransmission timers, vat's media clock, CM
    maintenance) needs timers that can be restarted or stopped without
    tracking raw engine handles. *)

open Cm_util

type t
(** A timer.  At most one expiry is pending at any time. *)

val create : Engine.t -> callback:(unit -> unit) -> t
(** A stopped timer that will run [callback] on expiry. *)

val start : t -> Time.span -> unit
(** Arm (or re-arm) the timer to fire after the given delay, replacing any
    pending expiry. *)

val start_periodic : t -> Time.span -> unit
(** Arm the timer to fire every [period] until {!stop}.  The callback runs
    once per period; re-arming happens before the callback so the callback
    may call {!stop} or {!start}. *)

val stop : t -> unit
(** Cancel any pending expiry. *)

val is_running : t -> bool
(** Whether an expiry is pending. *)

val expiry : t -> Time.t option
(** Absolute time of the pending expiry, if armed. *)
