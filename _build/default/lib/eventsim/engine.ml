open Cm_util

type event = { fn : unit -> unit }
type handle = event Heap.handle * event Heap.t

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable executed : int;
  mutable running : bool;
}

let create ?(start = Time.zero) () =
  { clock = start; queue = Heap.create (); executed = 0; running = false }

let now t = t.clock

let schedule_at t when_ fn =
  if when_ < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)" Time.pp when_ Time.pp
         t.clock);
  let h = Heap.insert t.queue ~prio:when_ { fn } in
  (h, t.queue)

let schedule_after t d fn = schedule_at t (Time.add t.clock (Stdlib.max d 0)) fn
let cancel _t (h, q) = Heap.remove q h
let pending t = Heap.size t.queue

let step t =
  match Heap.extract_min t.queue with
  | None -> false
  | Some (when_, ev) ->
      t.clock <- when_;
      t.executed <- t.executed + 1;
      ev.fn ();
      true

let run ?until t =
  if t.running then invalid_arg "Engine.run: reentrant run";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let continue = ref true in
      while !continue do
        match Heap.min_elt t.queue with
        | None -> continue := false
        | Some (when_, _) -> (
            match until with
            | Some limit when when_ > limit -> continue := false
            | _ -> ignore (step t))
      done;
      match until with Some limit when limit > t.clock -> t.clock <- limit | _ -> ())

let run_for t d = run ~until:(Time.add t.clock d) t
let events_executed t = t.executed
