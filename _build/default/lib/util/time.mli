(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds.  Using
    integers keeps event ordering exact and the simulation deterministic;
    OCaml's 63-bit native integers give ~292 years of range, far beyond any
    experiment. *)

type t = int
(** An absolute timestamp, in nanoseconds since the simulation epoch. *)

type span = int
(** A duration, in nanoseconds.  Spans may be negative (e.g. a difference
    of two timestamps), though most APIs expect non-negative spans. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : float -> span
(** [sec s] is a span of [s] seconds, rounded to the nearest nanosecond. *)

val minutes : float -> span
(** [minutes m] is a span of [m] minutes. *)

val to_float_s : t -> float
(** [to_float_s t] is [t] expressed in seconds. *)

val to_float_ms : t -> float
(** [to_float_ms t] is [t] expressed in milliseconds. *)

val to_float_us : t -> float
(** [to_float_us t] is [t] expressed in microseconds. *)

val add : t -> span -> t
(** [add t d] is the timestamp [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val min : t -> t -> t
(** Earlier of two timestamps. *)

val max : t -> t -> t
(** Later of two timestamps. *)

val compare : t -> t -> int
(** Total order on timestamps. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print a timestamp with an adaptive unit (ns/µs/ms/s). *)
