type t = { gain : float; mutable value : float; mutable initialized : bool }

let create ~gain =
  if gain <= 0. || gain > 1. then invalid_arg "Ewma.create: gain must be in (0,1]";
  { gain; value = nan; initialized = false }

let update t x =
  if t.initialized then t.value <- ((1. -. t.gain) *. t.value) +. (t.gain *. x)
  else begin
    t.value <- x;
    t.initialized <- true
  end

let value t = if t.initialized then t.value else nan
let initialized t = t.initialized

let reset t =
  t.value <- nan;
  t.initialized <- false
