(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** generator seeded explicitly, so every
    simulation run is reproducible from its seed.  Library code must never
    use [Stdlib.Random]'s global state. *)

type t
(** Generator state (mutable). *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]
    (any int, including 0) via SplitMix64 expansion. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each traffic source its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound); [bound] must be positive. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val uniform_span : t -> Time.span -> Time.span
(** [uniform_span t d] is a span uniform in \[0, d). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
