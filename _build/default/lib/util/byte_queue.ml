type 'a item = { value : 'a; size : int }
type 'a t = { q : 'a item Queue.t; mutable bytes : int }

let create () = { q = Queue.create (); bytes = 0 }

let push t ~size value =
  Queue.push { value; size } t.q;
  t.bytes <- t.bytes + size

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some item ->
      t.bytes <- t.bytes - item.size;
      Some item.value

let peek t = Option.map (fun item -> item.value) (Queue.peek_opt t.q)

let drop_head t =
  match Queue.take_opt t.q with
  | None -> None
  | Some item ->
      t.bytes <- t.bytes - item.size;
      Some (item.value, item.size)

let length t = Queue.length t.q
let bytes t = t.bytes
let is_empty t = Queue.is_empty t.q
let iter f t = Queue.iter (fun item -> f item.value) t.q

let clear t =
  Queue.clear t.q;
  t.bytes <- 0
