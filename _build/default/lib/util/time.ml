type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec s = int_of_float (Float.round (s *. 1e9))
let minutes m = sec (m *. 60.)
let to_float_s t = float_of_int t /. 1e9
let to_float_ms t = float_of_int t /. 1e6
let to_float_us t = float_of_int t /. 1e3
let add t d = t + d
let diff a b = a - b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let compare (a : t) b = Stdlib.compare a b

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_float_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_float_ms t)
  else Format.fprintf fmt "%.4fs" (to_float_s t)
