type 'a entry = {
  prio : int;
  seq : int; (* tie-break: FIFO among equal priorities *)
  value : 'a;
  mutable pos : int; (* index in [arr]; -1 once removed *)
}

type 'a handle = 'a entry

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 16 None; len = 0; next_seq = 0 }
let size h = h.len
let is_empty h = h.len = 0

let entry_at h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> assert false

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let set h i e =
  h.arr.(i) <- Some e;
  e.pos <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let e = entry_at h i and p = entry_at h parent in
    if less e p then begin
      set h parent e;
      set h i p;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less (entry_at h l) (entry_at h !smallest) then smallest := l;
  if r < h.len && less (entry_at h r) (entry_at h !smallest) then smallest := r;
  if !smallest <> i then begin
    let a = entry_at h i and b = entry_at h !smallest in
    set h i b;
    set h !smallest a;
    sift_down h !smallest
  end

let grow h =
  if h.len = Array.length h.arr then begin
    let bigger = Array.make (2 * Array.length h.arr) None in
    Array.blit h.arr 0 bigger 0 h.len;
    h.arr <- bigger
  end

let insert h ~prio value =
  grow h;
  let e = { prio; seq = h.next_seq; value; pos = h.len } in
  h.next_seq <- h.next_seq + 1;
  h.arr.(h.len) <- Some e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1);
  e

let min_elt h = if h.len = 0 then None else Some ((entry_at h 0).prio, (entry_at h 0).value)

let delete_at h i =
  let last = h.len - 1 in
  let victim = entry_at h i in
  victim.pos <- -1;
  if i = last then begin
    h.arr.(last) <- None;
    h.len <- last
  end
  else begin
    let moved = entry_at h last in
    h.arr.(last) <- None;
    h.len <- last;
    set h i moved;
    sift_down h i;
    sift_up h i
  end;
  victim

let extract_min h =
  if h.len = 0 then None
  else begin
    let e = delete_at h 0 in
    Some (e.prio, e.value)
  end

let mem _h (hd : 'a handle) = hd.pos >= 0

let remove h hd =
  if hd.pos < 0 then false
  else begin
    ignore (delete_at h hd.pos);
    true
  end

let clear h =
  for i = 0 to h.len - 1 do
    (entry_at h i).pos <- -1;
    h.arr.(i) <- None
  done;
  h.len <- 0
