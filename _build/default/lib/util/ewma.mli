(** Exponentially weighted moving average.

    Used for smoothed RTT and rate estimates, following the TCP
    [srtt = (1-g)·srtt + g·sample] form. *)

type t
(** Mutable EWMA state. *)

val create : gain:float -> t
(** [create ~gain] builds an empty estimator; the first sample initializes
    the average directly.  [gain] must be in (0, 1]. *)

val update : t -> float -> unit
(** Fold one sample into the average. *)

val value : t -> float
(** Current estimate; [nan] before any sample. *)

val initialized : t -> bool
(** Whether at least one sample has been folded in. *)

val reset : t -> unit
(** Forget all samples. *)
