(** Time-series recorder for experiment output.

    Collects (time, value) samples and turns them into the binned series
    the paper's figures plot: instantaneous rates over windows, or raw
    sampled values. *)

type t
(** A recorder. *)

type point = { time : Time.t; value : float }
(** One sample. *)

val create : unit -> t
(** Empty recorder. *)

val record : t -> Time.t -> float -> unit
(** Append a sample.  Times should be non-decreasing (they are when driven
    from a simulation); out-of-order samples are accepted but binning
    assumes rough monotonicity. *)

val points : t -> point list
(** All samples, oldest first. *)

val length : t -> int
(** Number of samples. *)

val last : t -> point option
(** Most recent sample. *)

val rate_series : t -> bin:Time.span -> until:Time.t -> (Time.t * float) list
(** Treat samples as event sizes (e.g. bytes) and compute a rate per bin:
    for each window of width [bin] up to [until], sum of values in the
    window divided by the window in seconds.  Bin timestamps are window
    starts. *)

val sampled_series : t -> bin:Time.span -> until:Time.t -> (Time.t * float) list
(** Piecewise-constant resampling: for each bin boundary, the value of the
    latest sample at or before it ([nan] before the first sample). *)

val mean_value : t -> float
(** Mean of all sample values; [nan] if empty. *)
