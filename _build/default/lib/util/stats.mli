(** Online and batch statistics used by experiments and tests. *)

type t
(** A running accumulator (Welford's algorithm): count, mean, variance,
    min, max.  O(1) space regardless of sample count. *)

val create : unit -> t
(** Fresh accumulator. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Number of samples recorded. *)

val mean : t -> float
(** Sample mean; [nan] if no samples. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest sample; [nan] if none. *)

val max_value : t -> float
(** Largest sample; [nan] if none. *)

val sum : t -> float
(** Sum of all samples. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen both streams. *)

val percentile : float array -> float -> float
(** [percentile samples p] is the [p]-th percentile ([0. <= p <= 100.]) by
    linear interpolation.  Sorts a copy; [nan] on an empty array. *)

val median : float array -> float
(** [median s] is [percentile s 50.]. *)

val pp : Format.formatter -> t -> unit
(** Render as [n=… mean=… sd=… min=… max=…]. *)
