type point = { time : Time.t; value : float }
type t = { mutable rev_points : point list; mutable n : int }

let create () = { rev_points = []; n = 0 }

let record t time value =
  t.rev_points <- { time; value } :: t.rev_points;
  t.n <- t.n + 1

let points t = List.rev t.rev_points
let length t = t.n
let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let rate_series t ~bin ~until =
  if bin <= 0 then invalid_arg "Timeline.rate_series: bin must be positive";
  let nbins = ((until - 1) / bin) + 1 in
  let nbins = Stdlib.max nbins 0 in
  let sums = Array.make nbins 0. in
  let add p =
    if p.time >= 0 && p.time < until then begin
      let i = p.time / bin in
      if i >= 0 && i < nbins then sums.(i) <- sums.(i) +. p.value
    end
  in
  List.iter add t.rev_points;
  let bin_s = Time.to_float_s bin in
  List.init nbins (fun i -> (i * bin, sums.(i) /. bin_s))

let sampled_series t ~bin ~until =
  if bin <= 0 then invalid_arg "Timeline.sampled_series: bin must be positive";
  let pts = points t in
  let nbins = if until <= 0 then 0 else ((until - 1) / bin) + 1 in
  let rec walk pts current i acc =
    if i >= nbins then List.rev acc
    else begin
      let boundary = i * bin in
      match pts with
      | p :: rest when p.time <= boundary -> walk rest p.value i acc
      | _ -> walk pts current (i + 1) ((boundary, current) :: acc)
    end
  in
  walk pts nan 0 []

let mean_value t =
  if t.n = 0 then nan
  else begin
    let total = List.fold_left (fun acc p -> acc +. p.value) 0. t.rev_points in
    total /. float_of_int t.n
  end
