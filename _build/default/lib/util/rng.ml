type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64, used only to expand the seed into generator state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) in
  create ~seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for simulation purposes; bias is
     negligible for bounds far below 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let float t bound =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let uniform_span t d = if d <= 0 then 0 else int t d

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
