(** FIFO queue with byte accounting.

    Backs router queues and application packet buffers.  Each element
    carries a size in bytes; the queue tracks the total so capacity checks
    are O(1).  Supports both tail insertion with head removal (FIFO) and
    drop-from-head (for the vat application buffer, paper §3.6). *)

type 'a t
(** A queue of ['a] elements with sizes. *)

val create : unit -> 'a t
(** Empty queue. *)

val push : 'a t -> size:int -> 'a -> unit
(** Append at the tail. *)

val pop : 'a t -> 'a option
(** Remove the head element; [None] if empty. *)

val peek : 'a t -> 'a option
(** Head element without removing it. *)

val drop_head : 'a t -> ('a * int) option
(** Remove and return the head element and its size (alias of {!pop} that
    also reports the size — used when implementing drop-from-head
    policies). *)

val length : 'a t -> int
(** Number of elements. *)

val bytes : 'a t -> int
(** Sum of element sizes. *)

val is_empty : 'a t -> bool
(** Whether the queue holds no elements. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate head to tail. *)

val clear : 'a t -> unit
(** Remove all elements. *)
