(** Removable binary min-heap.

    Backs the event queue: O(log n) insert and extract-min, O(log n)
    removal of an arbitrary element through its handle.  Elements are
    ordered by a priority supplied at insertion plus an insertion sequence
    number, so equal priorities pop in FIFO order (stable). *)

type 'a t
(** A heap of values of type ['a] keyed by integer priority. *)

type 'a handle
(** Identifies an inserted element; valid until the element is removed or
    extracted. *)

val create : unit -> 'a t
(** An empty heap. *)

val size : 'a t -> int
(** Number of live elements. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [size h = 0]. *)

val insert : 'a t -> prio:int -> 'a -> 'a handle
(** [insert h ~prio v] adds [v] with priority [prio] and returns its
    handle. *)

val min_elt : 'a t -> (int * 'a) option
(** Smallest (priority, value) without removing it. *)

val extract_min : 'a t -> (int * 'a) option
(** Remove and return the smallest (priority, value); [None] if empty. *)

val remove : 'a t -> 'a handle -> bool
(** [remove h hd] deletes the element behind [hd]; returns [false] if it
    was already extracted or removed. *)

val mem : 'a t -> 'a handle -> bool
(** Whether the handle still designates a live element. *)

val clear : 'a t -> unit
(** Remove all elements. *)
