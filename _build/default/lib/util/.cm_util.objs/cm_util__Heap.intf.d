lib/util/heap.mli:
