lib/util/timeline.ml: Array List Stdlib Time
