lib/util/ewma.ml:
