lib/util/byte_queue.ml: Option Queue
