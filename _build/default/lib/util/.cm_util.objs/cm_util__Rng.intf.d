lib/util/rng.mli: Time
