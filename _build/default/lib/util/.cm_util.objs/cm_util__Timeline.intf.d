lib/util/timeline.mli: Time
