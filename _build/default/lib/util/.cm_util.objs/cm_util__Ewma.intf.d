lib/util/ewma.mli:
