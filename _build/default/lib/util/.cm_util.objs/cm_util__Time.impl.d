lib/util/time.ml: Float Format Stdlib
