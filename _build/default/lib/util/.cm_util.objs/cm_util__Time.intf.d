lib/util/time.mli: Format
