(** Figure 3: throughput vs. packet loss, TCP/CM against TCP/Linux.

    10 Mbps Dummynet pipe with a 60 ms RTT; bulk TCP transfer measured
    over 30 s at each loss rate.  The paper's claim: the CM's congestion
    control is TCP-compatible — the two curves track each other across
    the whole loss range. *)

type row = {
  loss_pct : float;  (** Random loss applied to the data direction, %. *)
  linux_kbps : float;  (** TCP/Linux goodput, KBytes/s. *)
  cm_kbps : float;  (** TCP/CM goodput, KBytes/s. *)
}

val run : Exp_common.params -> row list
(** Execute the sweep. *)

val print : row list -> unit
(** Print paper-shaped rows. *)
