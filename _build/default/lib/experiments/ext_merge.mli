(** §5 extension: macroflows spanning multiple destinations.

    "A macroflow may thus be extended to cover multiple destination hosts
    behind the same shared bottleneck link.  Efficiently determining such
    bottlenecks remains an open research problem" (§5).  The CM's
    [merge] API already supports the grouping; this experiment supplies
    the missing bottleneck knowledge by construction (a star topology
    where two destinations share one bottleneck) and measures what
    merging buys:

    - {b separate} macroflows (the default): each flow probes the shared
      bottleneck independently — the pair is as aggressive as two TCPs;
    - {b merged}: one congestion window for both — the ensemble behaves
      like a single TCP toward a competing reference flow.

    The reference is a native TCP to a third destination crossing the
    same bottleneck; its achieved share tells us how aggressive the pair
    was. *)

type row = {
  setup : string;
  pair_bytes : int;  (** Bytes the two CC-UDP flows moved (combined). *)
  reference_bytes : int;  (** Bytes the competing native TCP moved. *)
  pair_to_reference : float;  (** Aggressiveness ratio. *)
}

val run : Exp_common.params -> row list
(** Separate vs merged, same topology and seed. *)

val print : row list -> unit
(** Print the comparison. *)
