open Cm_util
open Netsim

type row = {
  buffers : int;
  linux_kbps : float;
  cm_kbps : float;
  linux_cpu_pct : float;
  cm_cpu_pct : float;
}

let buffer_bytes = 8192

let run params =
  let points =
    if params.Exp_common.full then [ 1_000; 10_000; 100_000; 1_000_000 ]
    else [ 1_000; 10_000; 100_000 ]
  in
  let one buffers =
    let bytes = buffers * buffer_bytes in
    let measure driver =
      Exp_common.measured_bulk params ~driver ~bandwidth_bps:100e6 ~delay:(Time.us 250)
        ~qdisc_limit:1000 ~costs:Costs.pentium3 ~bytes ()
    in
    let native_bps, native_util = measure (fun _ -> Tcp.Conn.Native) in
    let cm_bps, cm_util =
      measure (function Some cm -> Tcp.Conn.Cm_driven cm | None -> assert false)
    in
    {
      buffers;
      linux_kbps = Exp_common.kbps native_bps;
      cm_kbps = Exp_common.kbps cm_bps;
      linux_cpu_pct = native_util *. 100.;
      cm_cpu_pct = cm_util *. 100.;
    }
  in
  List.map one points

let print rows =
  Exp_common.print_header "Figure 4: 100 Mbps TCP throughput (KBytes/s) vs buffers transmitted";
  Exp_common.print_row (Printf.sprintf "%-10s %14s %14s %10s" "buffers" "TCP/Linux" "TCP/CM" "delta%");
  List.iter
    (fun r ->
      let delta = (r.linux_kbps -. r.cm_kbps) /. r.linux_kbps *. 100. in
      Exp_common.print_row
        (Printf.sprintf "%-10d %14.0f %14.0f %10.2f" r.buffers r.linux_kbps r.cm_kbps delta))
    rows;
  Exp_common.print_header "Figure 5: sender CPU utilization (%) vs buffers transmitted";
  Exp_common.print_row
    (Printf.sprintf "%-10s %14s %14s %10s" "buffers" "TCP/Linux" "TCP/CM" "delta");
  List.iter
    (fun r ->
      Exp_common.print_row
        (Printf.sprintf "%-10d %14.2f %14.2f %10.2f" r.buffers r.linux_cpu_pct r.cm_cpu_pct
           (r.cm_cpu_pct -. r.linux_cpu_pct)))
    rows
