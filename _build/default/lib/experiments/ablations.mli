(** Ablation benches for the design choices DESIGN.md calls out.

    - {b Scheduler}: the paper ships unweighted round-robin but the
      modularity invites alternatives — two backlogged CC-UDP flows in
      one macroflow under round-robin vs a 3:1 weighted scheduler.
    - {b Controller}: AIMD vs the binomial family (IIAD, SQRT) driving a
      streaming source — smoother controllers trade oscillation for
      responsiveness (the paper's "other non-AIMD schemes … better suited
      to audio or video").
    - {b Sharing}: four concurrent web fetches with independent congestion
      state (native TCP) vs one shared macroflow (TCP/CM) — the ensemble
      is less aggressive and no less fair (paper §4.3/§6). *)

type sched_row = {
  scheduler : string;
  flow_a_bytes : int;
  flow_b_bytes : int;
  share_ratio : float;  (** flow_a / flow_b. *)
}

val run_scheduler : Exp_common.params -> sched_row list
(** Round-robin vs weighted (weight 3 for flow A). *)

type ctrl_row = {
  controller : string;
  mean_kbps : float;  (** Mean delivered rate, KBytes/s. *)
  cv : float;  (** Coefficient of variation of the per-100ms rate (smoothness; lower is smoother). *)
}

val run_controller : Exp_common.params -> ctrl_row list
(** AIMD vs IIAD vs SQRT on a fixed 8 Mbps bottleneck. *)

type share_row = {
  setup : string;
  mean_completion_ms : float;
  max_completion_ms : float;
  total_retransmits : int;
}

val run_sharing : Exp_common.params -> share_row list
(** 4 concurrent 256 KB fetches: independent vs shared congestion state. *)

val print_scheduler : sched_row list -> unit
(** Print the scheduler ablation. *)

val print_controller : ctrl_row list -> unit
(** Print the controller ablation. *)

val print_sharing : share_row list -> unit
(** Print the sharing ablation. *)

type fairness_row = {
  mix : string;
  per_flow_kb : int list;  (** Bytes moved by each flow, KB. *)
  jain : float;  (** Jain's fairness index: 1.0 = perfectly fair. *)
}

val run_fairness : Exp_common.params -> fairness_row list
(** All-native, all-CM (one macroflow), and a half-and-half mix sharing
    one bottleneck. *)

val print_fairness : fairness_row list -> unit
(** Print the fairness ablation. *)
