open Cm_util

type row = { loss_pct : float; linux_kbps : float; cm_kbps : float }

let loss_points = [ 0.0; 0.25; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 4.5; 5.0 ]

let native_driver _ = Tcp.Conn.Native

let cm_driver = function
  | Some cm -> Tcp.Conn.Cm_driven cm
  | None -> invalid_arg "fig3: CM required"

let run params =
  let one loss_pct =
    let loss = loss_pct /. 100. in
    let measure driver =
      fst
        (Exp_common.measured_bulk params ~driver ~bandwidth_bps:10e6 ~delay:(Time.ms 30) ~loss
           ~duration:(Time.sec 30.) ())
    in
    {
      loss_pct;
      linux_kbps = Exp_common.kbps (measure native_driver);
      cm_kbps = Exp_common.kbps (measure cm_driver);
    }
  in
  List.map one loss_points

let print rows =
  Exp_common.print_header
    "Figure 3: throughput (KBytes/s) vs loss rate, 10 Mbps / 60 ms RTT";
  Exp_common.print_row (Printf.sprintf "%-10s %14s %14s" "loss(%)" "TCP/Linux" "TCP/CM");
  List.iter
    (fun r ->
      Exp_common.print_row (Printf.sprintf "%-10.2f %14.1f %14.1f" r.loss_pct r.linux_kbps r.cm_kbps))
    rows
