(** Content adaptation (the paper's title claim, API §2.1.4).

    "A simple but useful figure-of-merit for interactive content delivery
    is the end-to-end download latency; users typically wait no more than
    a few seconds" (§1).  The CM makes adaptation possible: a server can
    call [cm_query] when a request arrives and choose which encoding to
    serve — "a large color or smaller grey-scale image" — so the download
    meets a latency target.

    Workload: a client issues 5 sequential requests over paths of three
    different bandwidths.  A fixed server always sends the full-quality
    object; the adaptive server picks the largest of four encodings whose
    estimated delivery time fits a 1 s budget.  Because macroflow state
    persists between connections, the adaptive server is conservative only
    on the very first request. *)

type fetch = { latency_ms : float; bytes : int }

type row = {
  bandwidth_mbps : float;
  fixed : fetch list;  (** Per-request results, fixed server. *)
  adaptive : fetch list;  (** Per-request results, adaptive server. *)
}

val run : Exp_common.params -> row list
(** Sweep the three path bandwidths. *)

val print : row list -> unit
(** Print per-request latency and served size. *)
