(** Figures 8–10: adaptive layered streaming over a time-varying path.

    A four-layer streaming source adapts to a bottleneck whose available
    bandwidth follows a schedule (our stand-in for the paper's live vBNS
    path — see DESIGN.md).  Three runs:

    - Fig. 8: ALF (request/callback) source, 25 s — fast, fine-grained
      layer tracking;
    - Fig. 9: rate-callback source with [cm_thresh], 20 s — coarser,
      smoother switches;
    - Fig. 10: rate-callback with receiver feedback batched to
      min(500 acks, 2 s), 70 s — bursty reported rate, slow start-up.

    Each series reports per-second transmission rate and the CM-reported
    rate, both in KBytes/s like the paper's axes. *)

type sample = {
  t_s : float;  (** Time, seconds. *)
  tx_kbps : float;  (** Transmission rate over the bin, KBytes/s. *)
  cm_kbps : float;  (** CM-reported per-flow rate, KBytes/s. *)
}

type series = { label : string; samples : sample list }

val run_fig8 : Exp_common.params -> series
(** The ALF run. *)

val run_fig9 : Exp_common.params -> series
(** The rate-callback run. *)

val run_fig10 : Exp_common.params -> series
(** The delayed-feedback run. *)

val print : series -> unit
(** Print one series. *)
