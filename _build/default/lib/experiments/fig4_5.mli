(** Figures 4 and 5: 100 Mbps throughput and CPU utilization vs. buffers
    transmitted, TCP/CM against native TCP.

    ttcp-style transfers of N × 8 KB buffers on a clean 100 Mbps LAN with
    the Pentium-III cost model active.  The paper's claims: throughput
    within ~0.5 % (the gap is the initial window, 1 vs 2 MTU, not CPU),
    and a CPU-utilization difference converging to slightly under 1 %. *)

type row = {
  buffers : int;  (** 8 KB buffers transferred. *)
  linux_kbps : float;  (** Native goodput, KBytes/s (Fig. 4). *)
  cm_kbps : float;  (** TCP/CM goodput, KBytes/s (Fig. 4). *)
  linux_cpu_pct : float;  (** Native sender CPU %, (Fig. 5). *)
  cm_cpu_pct : float;  (** TCP/CM sender CPU % (Fig. 5). *)
}

val run : Exp_common.params -> row list
(** Points 10^3..10^5 (plus 10^6 when [params.full]). *)

val print : row list -> unit
(** Print both figures' series. *)
