(** §4.1 microbenchmark: connection establishment time.

    The paper reports "no appreciable difference" in connection setup
    between TCP/CM and TCP/Linux: [cm_open] adds only flow-table work.
    We measure SYN-to-established latency for both, plus the CM flow
    bookkeeping cost in isolation. *)

type result = {
  linux_setup_us : float;  (** Native connect-to-established, µs. *)
  cm_setup_us : float;  (** TCP/CM connect-to-established, µs. *)
  cm_open_close_ns : float;  (** Mean wall-clock cost of one cm_open+cm_close pair, ns (host benchmark). *)
}

val run : Exp_common.params -> result
(** Run both microbenchmarks. *)

val print : result -> unit
(** Print the comparison. *)
