(** §6 comparison: P-HTTP multiplexing vs. CM concurrent connections.

    The paper's argument for the CM over application-level multiplexing:
    a single TCP connection couples logically independent streams ("if
    packets belonging to one stream are lost, another stream could
    stall"), while CM connections share congestion state without sharing
    a byte stream.  We send four 64 KB objects over a lossy path both
    ways and report per-object completion times against each setup's own
    lossless baseline: under P-HTTP a loss anywhere delays every later
    object; under the CM the luckiest streams are nearly untouched. *)

type row = {
  setup : string;
  per_object_ms : float array;  (** Completion time of each object. *)
  first_chunk_ms : float array;  (** Time to each object's first 8 KB. *)
  first_ms : float;  (** First object available. *)
  total_ms : float;  (** All objects complete. *)
  spread_ms : float;  (** last − first: serialization/coupling cost. *)
}

val run : Exp_common.params -> row list
(** P-HTTP vs CM, same path, same seed. *)

val print : row list -> unit
(** Print the comparison. *)
