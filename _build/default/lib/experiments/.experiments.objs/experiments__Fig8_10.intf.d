lib/experiments/fig8_10.mli: Exp_common
