lib/experiments/ext_cmproto.mli: Exp_common
