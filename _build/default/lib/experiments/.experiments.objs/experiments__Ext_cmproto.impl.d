lib/experiments/ext_cmproto.ml: Addr Cm Cm_util Cmproto Costs Cpu Engine Eventsim Exp_common Fig6 Host Libcm List Netsim Packet Printf Rng Time Timer Topology
