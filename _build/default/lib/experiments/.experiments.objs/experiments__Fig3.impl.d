lib/experiments/fig3.ml: Cm_util Exp_common List Printf Tcp Time
