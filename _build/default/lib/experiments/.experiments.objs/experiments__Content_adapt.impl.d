lib/experiments/content_adapt.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Exp_common List Netsim Printf Rng String Tcp Time Timer Topology
