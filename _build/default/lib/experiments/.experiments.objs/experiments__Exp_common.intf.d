lib/experiments/exp_common.mli: Cm Cm_util Costs Netsim Tcp Time
