lib/experiments/fig6.ml: Addr Cm Cm_util Costs Cpu Engine Eventsim Exp_common Host Libcm List Netsim Packet Printf Rng Tcp Time Topology Udp
