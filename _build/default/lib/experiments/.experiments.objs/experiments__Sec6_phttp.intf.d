lib/experiments/sec6_phttp.mli: Exp_common
