lib/experiments/content_adapt.mli: Exp_common
