lib/experiments/ablations.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Exp_common Float List Netsim Printf Rng Stats Stdlib String Tcp Time Timer Topology Udp
