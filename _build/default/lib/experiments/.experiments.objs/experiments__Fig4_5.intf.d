lib/experiments/fig4_5.mli: Exp_common
