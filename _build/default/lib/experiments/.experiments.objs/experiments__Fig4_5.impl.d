lib/experiments/fig4_5.ml: Cm_util Costs Exp_common List Netsim Printf Tcp Time
