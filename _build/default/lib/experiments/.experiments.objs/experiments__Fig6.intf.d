lib/experiments/fig6.mli: Exp_common Libcm
