lib/experiments/ext_merge.mli: Exp_common
