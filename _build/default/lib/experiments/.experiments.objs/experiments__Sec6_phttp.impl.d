lib/experiments/sec6_phttp.ml: Array Cm Cm_apps Cm_util Engine Eventsim Exp_common Float Host Link List Netsim Packet Printf Queue_disc String Time
