lib/experiments/fig8_10.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Exp_common Float Libcm List Netsim Printf Rng Time Timeline Topology Udp
