lib/experiments/ext_merge.ml: Addr Array Cm Cm_util Engine Eventsim Exp_common List Netsim Printf Rng Stdlib Tcp Time Timer Topology Udp
