lib/experiments/fig7.ml: Addr Cm Cm_apps Cm_util Engine Eventsim Exp_common List Netsim Printf Rng Tcp Time Topology
