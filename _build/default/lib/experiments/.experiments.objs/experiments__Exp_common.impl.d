lib/experiments/exp_common.ml: Addr Cm Cm_util Costs Cpu Engine Eventsim Host Netsim Rng Stdlib Tcp Time Topology
