lib/experiments/micro.ml: Addr Cm Cm_util Costs Engine Eventsim Exp_common Netsim Printf Rng Tcp Time Topology Unix
