lib/experiments/micro.mli: Exp_common
