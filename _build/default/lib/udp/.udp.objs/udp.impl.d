lib/udp/udp.ml: Cc_socket Feedback Socket
