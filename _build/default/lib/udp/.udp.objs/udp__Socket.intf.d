lib/udp/socket.mli: Addr Host Netsim Packet
