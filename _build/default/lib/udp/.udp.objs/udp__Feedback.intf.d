lib/udp/feedback.mli: Cm Cm_util Engine Eventsim Netsim Time
