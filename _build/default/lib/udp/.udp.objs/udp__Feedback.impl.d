lib/udp/feedback.ml: Cm Cm_util Engine Eventsim Hashtbl Netsim Stdlib Time Timer
