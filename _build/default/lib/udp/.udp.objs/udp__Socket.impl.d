lib/udp/socket.ml: Addr Engine Eventsim Host Netsim Packet
