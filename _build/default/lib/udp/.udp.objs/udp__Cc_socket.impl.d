lib/udp/cc_socket.ml: Addr Byte_queue Cm Cm_util Eventsim Feedback Host Lazy Netsim Packet Printf Socket Stdlib
