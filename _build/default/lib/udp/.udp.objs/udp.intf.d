lib/udp/udp.mli: Cc_socket Feedback Socket
