lib/udp/cc_socket.mli: Addr Cm Cm_util Feedback Host Netsim
