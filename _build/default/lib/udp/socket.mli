(** UDP sockets.

    Thin datagram sockets over the simulated IP layer: bind, optional
    connect, sendto with an arbitrary payload, and a receive callback.
    Everything CM-related (pacing, feedback) is layered above — see
    {!Feedback} and {!Udp_cc}. *)

open Netsim

type t
(** A UDP socket. *)

val create : Host.t -> ?dscp:int -> ?port:int -> unit -> t
(** [create host ()] binds an ephemeral port ([?port] to choose one).
    [dscp] marks every outgoing datagram's service class (default 0).
    Raises [Invalid_argument] if the port is taken. *)

val connect : t -> Addr.endpoint -> unit
(** Set the default destination (for {!send}) and install an exact-match
    demux entry for the return path, like a connected UDP socket. *)

val sendto : t -> dst:Addr.endpoint -> payload_bytes:int -> Packet.payload -> unit
(** Transmit one datagram of [payload_bytes] to [dst]. *)

val send : t -> payload_bytes:int -> Packet.payload -> unit
(** Transmit to the connected destination.  Raises [Invalid_argument] if
    the socket is not connected. *)

val on_receive : t -> (Packet.t -> unit) -> unit
(** Receive callback (raw packets, so protocols can read their payload). *)

val local : t -> Addr.endpoint
(** The bound endpoint. *)

val dscp : t -> int
(** The socket's differentiated-services codepoint. *)

val peer : t -> Addr.endpoint option
(** The connected destination, if any. *)

val close : t -> unit
(** Release the port and demux entries. *)

val packets_sent : t -> int
(** Datagrams transmitted. *)

val packets_received : t -> int
(** Datagrams delivered to the receive callback. *)
