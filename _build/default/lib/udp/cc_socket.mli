(** Congestion-controlled UDP sockets (the paper's buffered-send API).

    "They provide the same functionality as standard Berkeley UDP sockets,
    but … the buffered socket implementation schedules its packet output
    via CM callbacks" (§3.3).  Datagrams queue in a kernel buffer; each
    CM grant transmits one; the integrated {!Feedback.Sender} converts the
    receiver's application-level acks into [cm_update] calls, so the whole
    paper loop — request, grant, notify, update — runs without the
    application doing anything beyond [send].

    The host must have the CM's IP hook installed ([Cm.attach cm host]),
    which performs the [cm_notify] charging. *)

open Netsim

type t
(** A congestion-controlled UDP socket bound to one destination. *)

val create :
  Host.t ->
  cm:Cm.t ->
  dst:Addr.endpoint ->
  ?dscp:int ->
  ?port:int ->
  ?queue_limit_pkts:int ->
  unit ->
  t
(** [create host ~cm ~dst ()] opens a CM flow to [dst] and a UDP socket.
    [dscp] marks the flow's service class (and, under
    [By_destination_and_dscp] aggregation, selects its macroflow).  The
    kernel buffer holds [queue_limit_pkts] datagrams (default 128); sends
    beyond that are dropped and counted. *)

val send : t -> int -> unit
(** Queue one datagram of the given payload size (≤ the CM MTU; larger
    raises [Invalid_argument]).  Transmission happens when the CM grants. *)

val queued : t -> int
(** Datagrams waiting in the kernel buffer. *)

val unresolved_packets : t -> int
(** Transmitted datagrams whose feedback has not yet arrived. *)

val queue_drops : t -> int
(** Datagrams dropped because the buffer was full. *)

val packets_sent : t -> int
(** Datagrams actually transmitted. *)

val bytes_sent : t -> int
(** Payload bytes actually transmitted. *)

val flow : t -> Cm.Cm_types.flow_id
(** The CM flow backing this socket. *)

val close : t -> unit
(** Close the CM flow and the socket; queued datagrams are discarded. *)

val run_echo_receiver : Host.t -> port:int -> ?batch:int * Cm_util.Time.span -> unit -> Feedback.Receiver.t
(** Convenience for the remote end: bind [port] and acknowledge every
    {!Feedback.Data} datagram (optionally batched).  This is the
    unmodified-receiver role of the paper: a few lines of application
    code, no kernel changes. *)
