open Eventsim
open Netsim

type t = {
  host : Host.t;
  dscp : int;
  local : Addr.endpoint;
  mutable peer : Addr.endpoint option;
  mutable recv_cb : Packet.t -> unit;
  mutable open_ : bool;
  mutable sent : int;
  mutable received : int;
}

let create host ?(dscp = 0) ?port () =
  let port = match port with Some p -> p | None -> Host.alloc_port host in
  let local = Addr.endpoint ~host:(Host.id host) ~port in
  let t =
    { host; dscp; local; peer = None; recv_cb = (fun _ -> ()); open_ = false; sent = 0; received = 0 }
  in
  Host.bind host Addr.Udp ~port (fun pkt ->
      t.received <- t.received + 1;
      t.recv_cb pkt);
  t.open_ <- true;
  t

let connect t dst =
  t.peer <- Some dst;
  (* exact-match demux for the return path, so a busy port can host both a
     listener and connected sockets *)
  let in_flow = Addr.flow ~src:dst ~dst:t.local ~proto:Addr.Udp () in
  Host.connect_demux t.host in_flow (fun pkt ->
      t.received <- t.received + 1;
      t.recv_cb pkt)

let sendto t ~dst ~payload_bytes payload =
  if not t.open_ then invalid_arg "Socket.sendto: socket closed";
  let flow = Addr.flow ~src:t.local ~dst ~proto:Addr.Udp () in
  let pkt =
    Packet.make ~now:(Engine.now (Host.engine t.host)) ~flow ~payload_bytes payload
  in
  t.sent <- t.sent + 1;
  Host.ip_output t.host pkt

let send t ~payload_bytes payload =
  match t.peer with
  | Some dst -> sendto t ~dst ~payload_bytes payload
  | None -> invalid_arg "Socket.send: socket not connected"

let on_receive t cb = t.recv_cb <- cb
let local t = t.local
let peer t = t.peer

let close t =
  if t.open_ then begin
    t.open_ <- false;
    Host.unbind t.host Addr.Udp ~port:t.local.Addr.port;
    match t.peer with
    | Some dst ->
        Host.disconnect_demux t.host (Addr.flow ~src:dst ~dst:t.local ~proto:Addr.Udp ())
    | None -> ()
  end

let dscp t = t.dscp
let packets_sent t = t.sent
let packets_received t = t.received
