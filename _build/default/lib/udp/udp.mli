(** UDP substrate: plain sockets, the CM feedback protocol, and
    congestion-controlled (buffered) UDP sockets. *)

module Socket : module type of Socket
(** Plain UDP sockets. *)

module Feedback : module type of Feedback
(** Application-level acknowledgments for CM clients. *)

module Cc_socket : module type of Cc_socket
(** Congestion-controlled UDP sockets (the paper's buffered API). *)
