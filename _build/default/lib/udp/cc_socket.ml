open Cm_util
open Netsim

type t = {
  host : Host.t;
  cm : Cm.t;
  socket : Socket.t;
  fid : Cm.Cm_types.flow_id;
  fb : Feedback.Sender.t;
  queue : int Byte_queue.t; (* payload sizes awaiting grants *)
  queue_limit : int;
  mutable drops : int;
  mutable sent_pkts : int;
  mutable sent_bytes : int;
  mutable requests_outstanding : int;
  mutable open_ : bool;
}

let sync_requests t =
  let want = Stdlib.min (Byte_queue.length t.queue) 256 in
  while t.requests_outstanding < want do
    t.requests_outstanding <- t.requests_outstanding + 1;
    Cm.request t.cm t.fid
  done

let on_grant t _fid =
  t.requests_outstanding <- Stdlib.max 0 (t.requests_outstanding - 1);
  match Byte_queue.pop t.queue with
  | None -> Cm.notify t.cm t.fid ~nbytes:0
  | Some bytes ->
      let now_ts = Eventsim.Engine.now (Host.engine t.host) in
      let seq = Feedback.Sender.on_transmit t.fb ~bytes in
      t.sent_pkts <- t.sent_pkts + 1;
      t.sent_bytes <- t.sent_bytes + bytes;
      Socket.send t.socket ~payload_bytes:bytes (Feedback.Data { seq; bytes; ts = now_ts })

let on_packet t pkt =
  match pkt.Packet.payload with
  | Feedback.Ack { max_seq; count; bytes; ts_echo } ->
      Feedback.Sender.on_ack t.fb ~max_seq ~count ~bytes ~ts_echo
  | _ -> ()

let create host ~cm ~dst ?(dscp = 0) ?port ?(queue_limit_pkts = 128) () =
  let socket = Socket.create host ~dscp ?port () in
  Socket.connect socket dst;
  let key = Addr.flow ~dscp ~src:(Socket.local socket) ~dst ~proto:Addr.Udp () in
  let fid = Cm.open_flow cm key in
  let rec t =
    lazy
      {
        host;
        cm;
        socket;
        fid;
        fb =
          Feedback.Sender.create (Host.engine host)
            ~on_report:(fun r ->
              let self = Lazy.force t in
              if self.open_ then
                Cm.update cm fid ~nsent:r.Feedback.nsent ~nrecd:r.Feedback.nrecd
                  ~loss:r.Feedback.loss ?rtt:r.Feedback.rtt ())
            ();
        queue = Byte_queue.create ();
        queue_limit = queue_limit_pkts;
        drops = 0;
        sent_pkts = 0;
        sent_bytes = 0;
        requests_outstanding = 0;
        open_ = true;
      }
  in
  let t = Lazy.force t in
  Cm.register_send cm fid (fun fid -> on_grant t fid);
  Socket.on_receive socket (fun pkt -> on_packet t pkt);
  t

let send t bytes =
  if not t.open_ then invalid_arg "Cc_socket.send: socket closed";
  let mtu = Cm.mtu t.cm t.fid in
  if bytes <= 0 || bytes > mtu then
    invalid_arg (Printf.sprintf "Cc_socket.send: payload must be in (0, %d]" mtu);
  if Byte_queue.length t.queue >= t.queue_limit then t.drops <- t.drops + 1
  else begin
    Byte_queue.push t.queue ~size:bytes bytes;
    sync_requests t
  end

let queued t = Byte_queue.length t.queue
let unresolved_packets t = Feedback.Sender.outstanding_packets t.fb
let queue_drops t = t.drops
let packets_sent t = t.sent_pkts
let bytes_sent t = t.sent_bytes
let flow t = t.fid

let close t =
  if t.open_ then begin
    t.open_ <- false;
    Feedback.Sender.shutdown t.fb;
    Cm.close_flow t.cm t.fid;
    Socket.close t.socket;
    Byte_queue.clear t.queue
  end

let run_echo_receiver host ~port ?batch () =
  let socket = Socket.create host ~port () in
  let receiver = ref None in
  (* ack back to whoever sent the most recent data packet; with one sender
     per port this is exact (multi-sender receivers should build their own
     Receiver per peer) *)
  let last_src = ref None in
  Socket.on_receive socket (fun pkt ->
      match pkt.Packet.payload with
      | Feedback.Data { seq; bytes; ts } -> (
          last_src := Some pkt.Packet.flow.Addr.src;
          match !receiver with
          | Some r -> Feedback.Receiver.on_data r ~seq ~bytes ~ts
          | None -> ())
      | _ -> ());
  let r =
    Feedback.Receiver.create (Host.engine host)
      ~send_ack:(fun ~max_seq ~count ~bytes ~ts_echo ->
        match !last_src with
        | Some dst ->
            Socket.sendto socket ~dst ~payload_bytes:32
              (Feedback.Ack { max_seq; count; bytes; ts_echo })
        | None -> ())
      ?batch ()
  in
  receiver := Some r;
  r
