(* Library root: the UDP substrate's public face. *)

module Socket = Socket
module Feedback = Feedback
module Cc_socket = Cc_socket
