lib/core/cm_types.mli: Cm_util Format Time
