lib/core/cm.ml: Addr Cm_types Cm_util Controller Costs Cpu Engine Eventsim Format Hashtbl Host List Macroflow Netsim Packet Printf Scheduler Stdlib Time
