lib/core/scheduler.ml: Cm_types Float Hashtbl Option Queue
