lib/core/cm.mli: Addr Cm_types Cm_util Controller Engine Eventsim Format Host Macroflow Netsim Scheduler Time
