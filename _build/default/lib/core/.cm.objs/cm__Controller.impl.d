lib/core/controller.ml: Cm_types Cm_util Float Option Printf Stdlib
