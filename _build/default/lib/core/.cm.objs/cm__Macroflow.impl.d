lib/core/macroflow.ml: Cm_types Cm_util Controller Engine Eventsim Ewma Float Logs Queue Scheduler Sim_log Stdlib Time Timer
