lib/core/controller.mli: Cm_types
