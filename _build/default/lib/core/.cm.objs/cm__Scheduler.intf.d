lib/core/scheduler.mli: Cm_types
