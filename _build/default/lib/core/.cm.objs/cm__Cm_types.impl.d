lib/core/cm_types.ml: Cm_util Format Time
