lib/core/macroflow.mli: Cm_types Cm_util Controller Engine Eventsim Scheduler Time
