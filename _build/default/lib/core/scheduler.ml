type t = {
  name : string;
  enqueue : Cm_types.flow_id -> unit;
  dequeue : unit -> Cm_types.flow_id option;
  remove : Cm_types.flow_id -> unit;
  set_weight : Cm_types.flow_id -> float -> unit;
  pending : unit -> int;
  pending_for : Cm_types.flow_id -> int;
}

type factory = unit -> t

let round_robin () =
  (* ring of flow ids that currently have >= 1 pending request *)
  let ring : Cm_types.flow_id Queue.t = Queue.create () in
  let counts : (Cm_types.flow_id, int) Hashtbl.t = Hashtbl.create 8 in
  let total = ref 0 in
  let count fid = Option.value (Hashtbl.find_opt counts fid) ~default:0 in
  let enqueue fid =
    let c = count fid in
    Hashtbl.replace counts fid (c + 1);
    incr total;
    if c = 0 then Queue.push fid ring
  in
  let rec dequeue () =
    match Queue.take_opt ring with
    | None -> None
    | Some fid ->
        let c = count fid in
        if c = 0 then dequeue () (* stale ring entry after remove *)
        else begin
          Hashtbl.replace counts fid (c - 1);
          decr total;
          if c - 1 > 0 then Queue.push fid ring;
          Some fid
        end
  in
  let remove fid =
    total := !total - count fid;
    Hashtbl.remove counts fid
  in
  {
    name = "round-robin";
    enqueue;
    dequeue;
    remove;
    set_weight = (fun _ _ -> ());
    pending = (fun () -> !total);
    pending_for = count;
  }

let weighted () =
  (* stride scheduling: each backlogged flow has a pass value; the flow
     with the least pass is granted and its pass advances by stride_k /
     weight.  Linear scan — macroflows hold few flows. *)
  let stride_k = 1_000_000. in
  let counts : (Cm_types.flow_id, int) Hashtbl.t = Hashtbl.create 8 in
  let weights : (Cm_types.flow_id, float) Hashtbl.t = Hashtbl.create 8 in
  let passes : (Cm_types.flow_id, float) Hashtbl.t = Hashtbl.create 8 in
  let total = ref 0 in
  let global_pass = ref 0. in
  let count fid = Option.value (Hashtbl.find_opt counts fid) ~default:0 in
  let weight fid = Option.value (Hashtbl.find_opt weights fid) ~default:1.0 in
  let enqueue fid =
    let c = count fid in
    Hashtbl.replace counts fid (c + 1);
    incr total;
    if c = 0 && not (Hashtbl.mem passes fid) then Hashtbl.replace passes fid !global_pass;
    (* a newly backlogged flow re-enters at the current global pass so it
       cannot hoard credit accumulated while idle *)
    if c = 0 then Hashtbl.replace passes fid (Float.max !global_pass (Option.value (Hashtbl.find_opt passes fid) ~default:0.))
  in
  let dequeue () =
    if !total = 0 then None
    else begin
      let best = ref None in
      Hashtbl.iter
        (fun fid c ->
          if c > 0 then begin
            let pass = Option.value (Hashtbl.find_opt passes fid) ~default:0. in
            match !best with
            | Some (_, best_pass) when best_pass <= pass -> ()
            | _ -> best := Some (fid, pass)
          end)
        counts;
      match !best with
      | None -> None
      | Some (fid, pass) ->
          Hashtbl.replace counts fid (count fid - 1);
          decr total;
          global_pass := pass;
          Hashtbl.replace passes fid (pass +. (stride_k /. weight fid));
          Some fid
    end
  in
  let remove fid =
    total := !total - count fid;
    Hashtbl.remove counts fid;
    Hashtbl.remove weights fid;
    Hashtbl.remove passes fid
  in
  let set_weight fid w =
    if w <= 0. then invalid_arg "Scheduler.weighted: weight must be positive";
    Hashtbl.replace weights fid w
  in
  {
    name = "weighted-stride";
    enqueue;
    dequeue;
    remove;
    set_weight;
    pending = (fun () -> !total);
    pending_for = count;
  }
