open Cm_util

type flow_id = int
type loss_mode = No_loss | Ecn_echo | Transient | Persistent

type status = {
  rate_bps : float;
  srtt : Time.span option;
  rttvar : Time.span option;
  loss_rate : float;
  cwnd : int;
  mtu : int;
}

let pp_loss_mode fmt m =
  Format.pp_print_string fmt
    (match m with
    | No_loss -> "No_loss"
    | Ecn_echo -> "Ecn_echo"
    | Transient -> "Transient"
    | Persistent -> "Persistent")

let pp_status fmt s =
  let pp_span fmt = function
    | None -> Format.pp_print_string fmt "-"
    | Some v -> Time.pp fmt v
  in
  Format.fprintf fmt "rate=%.0fbps srtt=%a loss=%.4f cwnd=%d" s.rate_bps pp_span s.srtt
    s.loss_rate s.cwnd
