(** Macroflow schedulers.

    The congestion controller decides how much the macroflow may send; the
    scheduler decides {e which flow} gets each transmission grant.  The
    paper's implementation uses an unweighted round-robin scheduler; a
    weighted (stride) scheduler is provided for the ablation bench.

    Each [enqueue fid] is one outstanding request for a grant of up to one
    MTU; a flow may hold several requests at once. *)

type t = {
  name : string;
  enqueue : Cm_types.flow_id -> unit;  (** Add one pending request for the flow. *)
  dequeue : unit -> Cm_types.flow_id option;
      (** Pick the next flow to grant (consumes one of its requests). *)
  remove : Cm_types.flow_id -> unit;  (** Discard all state for a closed flow. *)
  set_weight : Cm_types.flow_id -> float -> unit;
      (** Set a flow's share weight (ignored by unweighted schedulers). *)
  pending : unit -> int;  (** Total requests queued. *)
  pending_for : Cm_types.flow_id -> int;  (** Requests queued for one flow. *)
}
(** A scheduler instance, private to one macroflow. *)

type factory = unit -> t
(** Builds a fresh scheduler. *)

val round_robin : factory
(** The paper's default: cycle over flows that have pending requests,
    one grant per turn, FIFO among a flow's own requests. *)

val weighted : factory
(** Stride scheduling: flows receive grants in proportion to their
    weights (default weight 1.0). *)
