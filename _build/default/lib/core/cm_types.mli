(** Shared Congestion Manager types.

    Conventions: every byte count handed to or returned by the CM is
    {e transport payload bytes} (what sequence numbers count), not wire
    bytes.  The MTU reported by the CM is likewise the usable payload per
    packet. *)

open Cm_util

type flow_id = int
(** Handle returned by [cm_open]; used in every subsequent call. *)

type loss_mode =
  | No_loss  (** Feedback reports progress only. *)
  | Ecn_echo  (** Congestion signaled by ECN marks (RFC 2481), no drop. *)
  | Transient  (** Isolated loss within a window (e.g. TCP triple dupack). *)
  | Persistent
      (** Serious, sustained loss (e.g. TCP retransmission timeout);
          the paper's [CM_LOST_FEEDBACK]. *)

type status = {
  rate_bps : float;  (** Estimated per-flow sustainable rate, payload bits/s. *)
  srtt : Time.span option;  (** Smoothed round-trip time, if any sample yet. *)
  rttvar : Time.span option;  (** RTT mean deviation. *)
  loss_rate : float;  (** Smoothed fraction of bytes lost. *)
  cwnd : int;  (** Macroflow congestion window, payload bytes. *)
  mtu : int;  (** Usable payload bytes per packet. *)
}
(** Network-state snapshot returned by [cm_query] and passed to
    [cmapp_update] callbacks. *)

val pp_loss_mode : Format.formatter -> loss_mode -> unit
(** Render the constructor name. *)

val pp_status : Format.formatter -> status -> unit
(** One-line rendering for traces. *)
