open Cm_util
open Eventsim
open Netsim

let header_bytes = 8

type Packet.payload +=
  | Data of { seq : int; ts : Time.t; inner : Packet.payload }
  | Feedback of {
      data_flow : Addr.flow;
      max_seq : int;
      count : int;
      bytes : int;
      ts_echo : Time.t;
    }

let unwrap = function Data { inner; _ } -> inner | p -> p

(* feedback packets travel host-to-host on a reserved flow; they are
   consumed by the sender agent's receive filter and never demultiplexed *)
let feedback_flow ~from_host ~to_host =
  Addr.flow
    ~src:(Addr.endpoint ~host:from_host ~port:0)
    ~dst:(Addr.endpoint ~host:to_host ~port:0)
    ~proto:Addr.Udp ()

let feedback_wire_bytes = 40

(* ------------------------------------------------------------------ *)

module Receiver_agent = struct
  type flow_state = {
    mutable pending_count : int;
    mutable pending_bytes : int;
    mutable max_seq : int;
    mutable ts_latest : Time.t;
    timer : Timer.t;
  }

  type t = {
    host : Host.t;
    ack_every : int;
    max_delay : Time.span;
    flows : flow_state Addr.Flow_table.t;
    mutable feedback_sent : int;
    mutable data_seen : int;
  }

  let flush t data_flow st =
    if st.pending_count > 0 then begin
      let pkt =
        Packet.make
          ~now:(Engine.now (Host.engine t.host))
          ~flow:(feedback_flow ~from_host:(Host.id t.host) ~to_host:data_flow.Addr.src.Addr.host)
          ~payload_bytes:feedback_wire_bytes
          (Feedback
             {
               data_flow;
               max_seq = st.max_seq;
               count = st.pending_count;
               bytes = st.pending_bytes;
               ts_echo = st.ts_latest;
             })
      in
      st.pending_count <- 0;
      st.pending_bytes <- 0;
      Timer.stop st.timer;
      t.feedback_sent <- t.feedback_sent + 1;
      Host.ip_output t.host pkt
    end

  let state_for t data_flow =
    match Addr.Flow_table.find_opt t.flows data_flow with
    | Some st -> st
    | None ->
        let rec st =
          lazy
            {
              pending_count = 0;
              pending_bytes = 0;
              max_seq = -1;
              ts_latest = 0;
              timer =
                Timer.create (Host.engine t.host) ~callback:(fun () ->
                    flush t data_flow (Lazy.force st));
            }
        in
        let st = Lazy.force st in
        Addr.Flow_table.replace t.flows data_flow st;
        st

  let on_data t pkt ~seq ~ts ~inner =
    t.data_seen <- t.data_seen + 1;
    let data_flow = pkt.Packet.flow in
    let st = state_for t data_flow in
    st.pending_count <- st.pending_count + 1;
    (* byte counts are in CM-charged payload units (header included), so
       feedback resolves exactly what cm_notify charged *)
    st.pending_bytes <- st.pending_bytes + Packet.payload_bytes pkt;
    if seq > st.max_seq then st.max_seq <- seq;
    st.ts_latest <- ts;
    if st.pending_count >= t.ack_every then flush t data_flow st
    else if not (Timer.is_running st.timer) then Timer.start st.timer t.max_delay;
    (* hand the unwrapped packet to the unmodified application *)
    Some { pkt with Packet.payload = inner }

  let install host ?(ack_every = 2) ?(max_delay = Time.ms 100) () =
    if ack_every <= 0 then invalid_arg "Receiver_agent.install: ack_every must be positive";
    let t =
      {
        host;
        ack_every;
        max_delay;
        flows = Addr.Flow_table.create 16;
        feedback_sent = 0;
        data_seen = 0;
      }
    in
    Host.add_rx_filter host (fun pkt ->
        match pkt.Packet.payload with
        | Data { seq; ts; inner } -> on_data t pkt ~seq ~ts ~inner
        | _ -> Some pkt);
    t

  let feedback_sent t = t.feedback_sent
  let data_seen t = t.data_seen
end

(* ------------------------------------------------------------------ *)

module Sender_agent = struct
  type t = {
    cm : Cm.t;
    handlers :
      (Cm.Cm_types.flow_id, max_seq:int -> count:int -> bytes:int -> ts_echo:Time.t -> unit)
      Hashtbl.t;
    mutable feedback_received : int;
    mutable orphan : int;
  }

  let install host cm =
    let t = { cm; handlers = Hashtbl.create 16; feedback_received = 0; orphan = 0 } in
    Host.add_rx_filter host (fun pkt ->
        match pkt.Packet.payload with
        | Feedback { data_flow; max_seq; count; bytes; ts_echo } ->
            t.feedback_received <- t.feedback_received + 1;
            (match Cm.lookup t.cm data_flow with
            | Some fid -> (
                match Hashtbl.find_opt t.handlers fid with
                | Some handler -> handler ~max_seq ~count ~bytes ~ts_echo
                | None -> t.orphan <- t.orphan + 1)
            | None -> t.orphan <- t.orphan + 1);
            None (* consumed: applications never see CM feedback *)
        | _ -> Some pkt);
    t

  let register t fid handler = Hashtbl.replace t.handlers fid handler
  let unregister t fid = Hashtbl.remove t.handlers fid
  let feedback_received t = t.feedback_received
  let orphan_feedback t = t.orphan
end

(* ------------------------------------------------------------------ *)

module Session = struct
  type t = {
    agent : Sender_agent.t;
    host : Host.t;
    cm : Cm.t;
    socket : Udp.Socket.t;
    fid : Cm.Cm_types.flow_id;
    ledger : Udp.Feedback.Sender.t;
    queue : int Byte_queue.t;
    queue_limit : int;
    mutable sent_pkts : int;
    mutable sent_bytes : int;
    mutable requests_outstanding : int;
    mutable open_ : bool;
  }

  let sync_requests t =
    let want = Stdlib.min (Byte_queue.length t.queue) 256 in
    while t.requests_outstanding < want do
      t.requests_outstanding <- t.requests_outstanding + 1;
      Cm.request t.cm t.fid
    done

  let on_grant t _fid =
    t.requests_outstanding <- Stdlib.max 0 (t.requests_outstanding - 1);
    match Byte_queue.pop t.queue with
    | None -> Cm.notify t.cm t.fid ~nbytes:0
    | Some bytes ->
        let now = Engine.now (Host.engine t.host) in
        let seq = Udp.Feedback.Sender.on_transmit t.ledger ~bytes:(bytes + header_bytes) in
        t.sent_pkts <- t.sent_pkts + 1;
        t.sent_bytes <- t.sent_bytes + bytes;
        Udp.Socket.send t.socket
          ~payload_bytes:(bytes + header_bytes)
          (Data { seq; ts = now; inner = Packet.Raw bytes })

  let create agent ~host ~cm ~dst ?(dscp = 0) ?port ?(queue_limit_pkts = 128) () =
    let socket = Udp.Socket.create host ~dscp ?port () in
    Udp.Socket.connect socket dst;
    let key = Addr.flow ~dscp ~src:(Udp.Socket.local socket) ~dst ~proto:Addr.Udp () in
    let fid = Cm.open_flow cm key in
    let t_ref = ref None in
    let ledger =
      Udp.Feedback.Sender.create (Host.engine host)
        ~on_report:(fun r ->
          match !t_ref with
          | Some t when t.open_ ->
              Cm.update cm fid ~nsent:r.Udp.Feedback.nsent ~nrecd:r.Udp.Feedback.nrecd
                ~loss:r.Udp.Feedback.loss ?rtt:r.Udp.Feedback.rtt ()
          | _ -> ())
        ()
    in
    let t =
      {
        agent;
        host;
        cm;
        socket;
        fid;
        ledger;
        queue = Byte_queue.create ();
        queue_limit = queue_limit_pkts;
        sent_pkts = 0;
        sent_bytes = 0;
        requests_outstanding = 0;
        open_ = true;
      }
    in
    t_ref := Some t;
    Cm.register_send cm fid (fun fid -> on_grant t fid);
    Sender_agent.register agent fid (fun ~max_seq ~count ~bytes ~ts_echo ->
        Udp.Feedback.Sender.on_ack t.ledger ~max_seq ~count ~bytes ~ts_echo);
    t

  let send t bytes =
    if not t.open_ then invalid_arg "Cmproto.Session.send: session closed";
    let mtu = Cm.mtu t.cm t.fid - header_bytes in
    if bytes <= 0 || bytes > mtu then
      invalid_arg (Printf.sprintf "Cmproto.Session.send: payload must be in (0, %d]" mtu);
    if Byte_queue.length t.queue < t.queue_limit then begin
      Byte_queue.push t.queue ~size:bytes bytes;
      sync_requests t
    end

  let queued t = Byte_queue.length t.queue
  let packets_sent t = t.sent_pkts
  let bytes_sent t = t.sent_bytes
  let unresolved_packets t = Udp.Feedback.Sender.outstanding_packets t.ledger
  let flow t = t.fid

  let close t =
    if t.open_ then begin
      t.open_ <- false;
      Udp.Feedback.Sender.shutdown t.ledger;
      Sender_agent.unregister t.agent t.fid;
      Cm.close_flow t.cm t.fid;
      Udp.Socket.close t.socket;
      Byte_queue.clear t.queue
    end
end
