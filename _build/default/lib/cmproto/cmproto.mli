(** The Congestion Manager protocol (receiver-side CM feedback).

    The paper's implementation deliberately changes nothing at the
    receiver, so every UDP application must implement its own
    acknowledgments (§3.1) and pay user-space feedback costs (§4.2).  Its
    Limitations section points at the alternative from the original CM
    architecture paper \[3\]: a kernel-to-kernel {e CM protocol} where the
    receiving host's CM acknowledges on the applications' behalf — "but
    remains to be studied".  This library studies it.

    Mechanics: the sending CM prepends a small header (sequence number,
    timestamp) to each data packet of participating flows; the receiving
    host's {!Receiver_agent} strips the header before the packet reaches
    the (unmodified) application and periodically sends aggregate
    feedback — highest sequence, packets/bytes received, timestamp echo —
    back to the sending host's {!Sender_agent}, which turns it into
    [cm_update] calls.  Applications send and receive exactly as without
    the CM: no acknowledgment code, no recv/gettimeofday/update crossings.

    The [ext_cmproto] experiment quantifies the saving against the
    paper's buffered (application-feedback) API. *)

open Cm_util
open Netsim

val header_bytes : int
(** Wire overhead added to each data packet (8 bytes: sequence +
    compressed timestamp). *)

type Packet.payload +=
  | Data of { seq : int; ts : Time.t; inner : Packet.payload }
        (** A data packet wrapped with the CM header. *)
  | Feedback of {
      data_flow : Addr.flow;  (** The (sender-side) flow being acknowledged. *)
      max_seq : int;
      count : int;
      bytes : int;
      ts_echo : Time.t;
    }  (** Receiver-CM feedback for one flow. *)

(** Receiving host: strips CM headers, generates feedback. *)
module Receiver_agent : sig
  type t
  (** One per receiving host. *)

  val install : Host.t -> ?ack_every:int -> ?max_delay:Time.span -> unit -> t
  (** Register the agent's receive filter on the host.  Feedback for a
      flow is emitted after [ack_every] data packets (default 2, like
      delayed acks) or [max_delay] after the first unacknowledged packet
      (default 100 ms). *)

  val feedback_sent : t -> int
  (** Feedback packets emitted. *)

  val data_seen : t -> int
  (** CM-wrapped data packets processed. *)
end

(** Sending host: consumes feedback, drives [cm_update]. *)
module Sender_agent : sig
  type t
  (** One per sending host (requires the host's CM). *)

  val install : Host.t -> Cm.t -> t
  (** Register the agent's receive filter; feedback packets are consumed
      here and never reach applications. *)

  val feedback_received : t -> int
  (** Feedback packets consumed. *)

  val orphan_feedback : t -> int
  (** Feedback for flows that are no longer open. *)
end

(** A congestion-controlled, CM-protocol-acknowledged datagram session —
    the buffered API of §3.3 with kernel-to-kernel feedback instead of
    application acknowledgments. *)
module Session : sig
  type t
  (** A session bound to one destination. *)

  val create :
    Sender_agent.t ->
    host:Host.t ->
    cm:Cm.t ->
    dst:Addr.endpoint ->
    ?dscp:int ->
    ?port:int ->
    ?queue_limit_pkts:int ->
    unit ->
    t
  (** Open a CM flow to [dst] whose transmissions carry CM headers and
      whose feedback arrives via the agents. *)

  val send : t -> int -> unit
  (** Queue one datagram (paced by CM grants, like
      {!Udp.Cc_socket.send}). *)

  val queued : t -> int
  (** Datagrams awaiting grants. *)

  val packets_sent : t -> int
  (** Datagrams transmitted. *)

  val bytes_sent : t -> int
  (** Payload bytes transmitted (excluding the CM header). *)

  val unresolved_packets : t -> int
  (** Transmitted datagrams not yet covered by feedback. *)

  val flow : t -> Cm.Cm_types.flow_id
  (** The backing CM flow. *)

  val close : t -> unit
  (** Release the CM flow and socket. *)
end

val unwrap : Packet.payload -> Packet.payload
(** [unwrap p] is the inner payload if [p] is CM-wrapped, else [p]
    (useful in tests and custom receivers). *)
