open Eventsim

type handler = Packet.t -> unit

type t = {
  id : int;
  engine : Engine.t;
  cpu : Cpu.t;
  costs : Costs.t;
  mutable route : (Packet.t -> unit) option;
  mutable tx_hooks : (Packet.t -> unit) list;
  mutable rx_filters : (Packet.t -> Packet.t option) list;
  listeners : (Addr.proto * int, handler) Hashtbl.t;
  connected : handler Addr.Flow_table.t;
  mutable next_port : int;
  mutable unmatched : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
}

let create engine ~id ?(costs = Costs.zero) () =
  {
    id;
    engine;
    cpu = Cpu.create engine;
    costs;
    route = None;
    tx_hooks = [];
    rx_filters = [];
    listeners = Hashtbl.create 16;
    connected = Addr.Flow_table.create 16;
    next_port = 32768;
    unmatched = 0;
    tx_packets = 0;
    tx_bytes = 0;
  }

let id t = t.id
let engine t = t.engine
let cpu t = t.cpu
let costs t = t.costs
let attach_route t out = t.route <- Some out
let add_tx_hook t hook = t.tx_hooks <- t.tx_hooks @ [ hook ]
let add_rx_filter t filter = t.rx_filters <- t.rx_filters @ [ filter ]

let ip_output t pkt =
  match t.route with
  | None -> failwith (Format.asprintf "Host.ip_output: host %d has no route" t.id)
  | Some out ->
      List.iter (fun hook -> hook pkt) t.tx_hooks;
      t.tx_packets <- t.tx_packets + 1;
      t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
      out pkt

let demux t pkt =
  (* demultiplexing ignores the service class: a peer may mark its
     packets with any DSCP *)
  let flow = Addr.strip_dscp pkt.Packet.flow in
  match Addr.Flow_table.find_opt t.connected flow with
  | Some handler -> handler pkt
  | None -> (
      match Hashtbl.find_opt t.listeners (flow.Addr.proto, flow.Addr.dst.Addr.port) with
      | Some handler -> handler pkt
      | None -> t.unmatched <- t.unmatched + 1)

let deliver t pkt =
  (* receive filters run before demultiplexing; a filter may rewrite the
     packet (e.g. strip a CM header) or consume it outright *)
  let rec run filters pkt =
    match filters with
    | [] -> demux t pkt
    | f :: rest -> ( match f pkt with Some pkt -> run rest pkt | None -> ())
  in
  run t.rx_filters pkt

let bind t proto ~port handler =
  if Hashtbl.mem t.listeners (proto, port) then
    invalid_arg (Printf.sprintf "Host.bind: port %d already bound on host %d" port t.id);
  Hashtbl.replace t.listeners (proto, port) handler

let unbind t proto ~port = Hashtbl.remove t.listeners (proto, port)

let connect_demux t flow handler =
  let flow = Addr.strip_dscp flow in
  if Addr.Flow_table.mem t.connected flow then
    invalid_arg (Format.asprintf "Host.connect_demux: %a already bound" Addr.pp_flow flow);
  Addr.Flow_table.replace t.connected flow handler

let disconnect_demux t flow = Addr.Flow_table.remove t.connected (Addr.strip_dscp flow)

let alloc_port t =
  let port = t.next_port in
  t.next_port <- t.next_port + 1;
  port

let unmatched t = t.unmatched
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
