open Cm_util
open Eventsim

type t = { engine : Engine.t; mutable free_at : Time.t; mutable total_busy : Time.span }

let create engine = { engine; free_at = Engine.now engine; total_busy = 0 }

let run t ~cost fn =
  if cost < 0 then invalid_arg "Cpu.run: negative cost";
  let now = Engine.now t.engine in
  t.total_busy <- t.total_busy + cost;
  let start = Time.max now t.free_at in
  let finish = Time.add start cost in
  t.free_at <- finish;
  if finish <= now then fn () else ignore (Engine.schedule_at t.engine finish fn)

let charge t cost =
  if cost < 0 then invalid_arg "Cpu.charge: negative cost";
  let now = Engine.now t.engine in
  t.total_busy <- t.total_busy + cost;
  let start = Time.max now t.free_at in
  t.free_at <- Time.add start cost

let busy_until t = t.free_at
let total_busy t = t.total_busy

let utilization t ~since_busy ~since_time =
  let elapsed = Time.diff (Engine.now t.engine) since_time in
  if elapsed <= 0 then 0.
  else float_of_int (t.total_busy - since_busy) /. float_of_int elapsed
