(** Router queueing disciplines.

    Drop-tail FIFO (the "de-facto standard for kernel buffers and network
    router buffers", paper §3.6), drop-from-head FIFO, and RED with
    optional ECN marking (the paper's congestion-notification alternative,
    §2.1.3 / RFC 2481). *)

type verdict =
  | Enqueued  (** Packet accepted (possibly ECN-marked). *)
  | Dropped  (** Packet dropped at enqueue. *)

type t = {
  name : string;
  enqueue : Packet.t -> verdict;
  dequeue : unit -> Packet.t option;
  len : unit -> int;  (** Packets queued. *)
  bytes : unit -> int;  (** Bytes queued. *)
  drops : unit -> int;  (** Cumulative drop count. *)
  marks : unit -> int;  (** Cumulative ECN-mark count. *)
}
(** A queueing discipline as a record of operations. *)

val droptail : ?limit_bytes:int -> limit_pkts:int -> unit -> t
(** Classic FIFO: drop arrivals once [limit_pkts] packets (or, if given,
    [limit_bytes] bytes) are queued. *)

val drop_from_head : limit_pkts:int -> unit -> t
(** FIFO that, when full, drops the *oldest* packet to admit the new one —
    the behaviour vat wants for its application buffer. *)

val red :
  ?ecn:bool ->
  ?wq:float ->
  ?max_p:float ->
  min_th:int ->
  max_th:int ->
  limit_pkts:int ->
  rng:Cm_util.Rng.t ->
  unit ->
  t
(** Random Early Detection (Floyd & Jacobson) on the queue length in
    packets, with the standard EWMA average ([wq], default 0.002) and
    marking probability ramp to [max_p] (default 0.1).  With [~ecn:true],
    ECN-capable packets are marked instead of dropped below [max_th]. *)
