(** Host CPU modeled as a serial resource.

    The paper's overhead results (Figs. 5 and 6, Table 1) are driven by
    where CPU cycles go: syscalls, data copies, protocol processing.  Each
    host owns one CPU; work items occupy it for a cost-model duration and
    execute in submission order.  Utilization is busy time over elapsed
    time, exactly how the paper reports Fig. 5. *)

open Cm_util
open Eventsim

type t
(** A CPU. *)

val create : Engine.t -> t
(** A CPU bound to the engine's clock, idle at creation. *)

val run : t -> cost:Time.span -> (unit -> unit) -> unit
(** [run t ~cost f] occupies the CPU for [cost] then executes [f].  If the
    CPU is busy the work starts when it frees.  [cost = 0] with an idle CPU
    executes [f] immediately (no event), keeping cost-free simulations
    cheap. *)

val charge : t -> Time.span -> unit
(** Account [cost] of busy time without running anything afterwards (used
    for receive-path work whose completion nothing waits on). *)

val busy_until : t -> Time.t
(** Time at which currently queued work completes (may be in the past). *)

val total_busy : t -> Time.span
(** Cumulative busy time since creation. *)

val utilization : t -> since_busy:Time.span -> since_time:Time.t -> float
(** [utilization t ~since_busy ~since_time] is the fraction of wall time
    spent busy between a snapshot ([since_busy] = {!total_busy} then,
    [since_time] = the then-current time) and now. *)
