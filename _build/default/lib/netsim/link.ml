open Cm_util
open Eventsim

type stats = {
  enqueued_pkts : int;
  delivered_pkts : int;
  delivered_bytes : int;
  queue_drops : int;
  channel_drops : int;
  ecn_marks : int;
}

type t = {
  engine : Engine.t;
  mutable bandwidth_bps : float;
  delay : Time.span;
  qdisc : Queue_disc.t;
  mutable loss_rate : float;
  mutable reorder : (float * Time.span) option; (* probability, extra delay *)
  rng : Rng.t option;
  sink : Packet.t -> unit;
  mutable busy : bool;
  mutable enqueued_pkts : int;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable channel_drops : int;
}

let create engine ~bandwidth_bps ~delay ?qdisc ?(loss_rate = 0.) ?reorder ?rng ~sink () =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0 then invalid_arg "Link.create: negative delay";
  if (loss_rate > 0. || reorder <> None) && rng = None then
    invalid_arg "Link.create: loss_rate/reorder need an rng";
  (match reorder with
  | Some (p, extra) when p < 0. || p > 1. || extra <= 0 ->
      invalid_arg "Link.create: reorder needs 0 <= p <= 1 and a positive extra delay"
  | _ -> ());
  let qdisc = match qdisc with Some q -> q | None -> Queue_disc.droptail ~limit_pkts:100 () in
  {
    engine;
    bandwidth_bps;
    delay;
    qdisc;
    loss_rate;
    reorder;
    rng;
    sink;
    busy = false;
    enqueued_pkts = 0;
    delivered_pkts = 0;
    delivered_bytes = 0;
    channel_drops = 0;
  }

let tx_time t (pkt : Packet.t) = Time.sec (float_of_int (pkt.size * 8) /. t.bandwidth_bps)

let rec start_transmission t =
  match t.qdisc.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let deliver () =
        t.delivered_pkts <- t.delivered_pkts + 1;
        t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
        t.sink pkt
      in
      let finish () =
        (* Dummynet-style reordering: with probability p a packet takes a
           detour of [extra] additional propagation delay, letting later
           packets overtake it *)
        let extra =
          match (t.reorder, t.rng) with
          | Some (p, extra), Some rng when Rng.bernoulli rng p -> extra
          | _ -> 0
        in
        ignore (Engine.schedule_after t.engine (t.delay + extra) deliver);
        start_transmission t
      in
      ignore (Engine.schedule_after t.engine (tx_time t pkt) finish)

let send t pkt =
  let lost =
    t.loss_rate > 0.
    && match t.rng with Some rng -> Rng.bernoulli rng t.loss_rate | None -> false
  in
  if lost then t.channel_drops <- t.channel_drops + 1
  else begin
    match t.qdisc.Queue_disc.enqueue pkt with
    | Queue_disc.Dropped -> ()
    | Queue_disc.Enqueued ->
        t.enqueued_pkts <- t.enqueued_pkts + 1;
        if not t.busy then start_transmission t
  end

let set_bandwidth t bw =
  if bw <= 0. then invalid_arg "Link.set_bandwidth: bandwidth must be positive";
  t.bandwidth_bps <- bw

let bandwidth t = t.bandwidth_bps
let delay t = t.delay

let set_loss_rate t r =
  if r > 0. && t.rng = None then invalid_arg "Link.set_loss_rate: loss needs an rng";
  t.loss_rate <- r

let qdisc t = t.qdisc

let stats t =
  {
    enqueued_pkts = t.enqueued_pkts;
    delivered_pkts = t.delivered_pkts;
    delivered_bytes = t.delivered_bytes;
    queue_drops = t.qdisc.Queue_disc.drops ();
    channel_drops = t.channel_drops;
    ecn_marks = t.qdisc.Queue_disc.marks ();
  }

let busy t = t.busy
