type t = {
  table : (int, Packet.t -> unit) Hashtbl.t;
  mutable default : (Packet.t -> unit) option;
  mutable no_route : int;
  mutable forwarded : int;
}

let create () = { table = Hashtbl.create 8; default = None; no_route = 0; forwarded = 0 }
let add_route t ~dst out = Hashtbl.replace t.table dst out
let set_default t out = t.default <- Some out

let forward t pkt =
  let dst = pkt.Packet.flow.Addr.dst.Addr.host in
  match Hashtbl.find_opt t.table dst with
  | Some out ->
      t.forwarded <- t.forwarded + 1;
      out pkt
  | None -> (
      match t.default with
      | Some out ->
          t.forwarded <- t.forwarded + 1;
          out pkt
      | None -> t.no_route <- t.no_route + 1)

let no_route_drops t = t.no_route
let forwarded t = t.forwarded
