(** CPU cost profiles.

    Named per-operation costs charged to a host's {!Cpu}.  The [pentium3]
    profile is calibrated to the paper's 600 MHz Pentium III testbed
    (§4: syscalls a few µs, copies ~3 ns/byte, protocol processing a few
    µs per packet); [zero] disables CPU accounting entirely, which the
    pure window-dynamics experiments use. *)

open Cm_util

type t = {
  syscall : Time.span;  (** Base user/kernel boundary crossing. *)
  copy_per_byte_ns : int;  (** Data copy cost, per byte, in ns. *)
  gettimeofday : Time.span;  (** One clock read from user space. *)
  select_base : Time.span;  (** [select()] fixed cost. *)
  select_per_fd : Time.span;  (** [select()] per-descriptor scan cost. *)
  ioctl : Time.span;  (** One ioctl on the CM control socket. *)
  tcp_proc : Time.span;  (** Kernel TCP per-segment processing. *)
  udp_proc : Time.span;  (** Kernel UDP per-datagram processing. *)
  ip_proc : Time.span;  (** IP + driver output path per packet. *)
  intr_rx : Time.span;  (** Receive interrupt + demux per packet. *)
  cm_op : Time.span;  (** One in-kernel CM operation (request, notify, update, query or grant). *)
  signal_delivery : Time.span;  (** Delivering a SIGIO to a process. *)
}
(** Per-operation costs. *)

val zero : t
(** All costs zero: CPU accounting off. *)

val pentium3 : t
(** Costs approximating the paper's 600 MHz PIII / Linux 2.2 testbed. *)

val copy : t -> int -> Time.span
(** [copy t n] is the cost of copying [n] bytes across the boundary. *)

val select : t -> nfds:int -> Time.span
(** Cost of one [select] over [nfds] descriptors. *)
