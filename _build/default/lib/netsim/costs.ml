open Cm_util

type t = {
  syscall : Time.span;
  copy_per_byte_ns : int;
  gettimeofday : Time.span;
  select_base : Time.span;
  select_per_fd : Time.span;
  ioctl : Time.span;
  tcp_proc : Time.span;
  udp_proc : Time.span;
  ip_proc : Time.span;
  intr_rx : Time.span;
  cm_op : Time.span;
  signal_delivery : Time.span;
}

let zero =
  {
    syscall = 0;
    copy_per_byte_ns = 0;
    gettimeofday = 0;
    select_base = 0;
    select_per_fd = 0;
    ioctl = 0;
    tcp_proc = 0;
    udp_proc = 0;
    ip_proc = 0;
    intr_rx = 0;
    cm_op = 0;
    signal_delivery = 0;
  }

let pentium3 =
  {
    syscall = Time.ns 5_000;
    copy_per_byte_ns = 6;
    gettimeofday = Time.ns 2_000;
    select_base = Time.ns 5_000;
    select_per_fd = Time.ns 500;
    ioctl = Time.ns 6_000;
    tcp_proc = Time.ns 9_000;
    udp_proc = Time.ns 6_000;
    ip_proc = Time.ns 7_000;
    intr_rx = Time.ns 10_000;
    cm_op = Time.ns 300;
    signal_delivery = Time.ns 12_000;
  }

let copy t n = t.copy_per_byte_ns * n
let select t ~nfds = t.select_base + (t.select_per_fd * nfds)
