lib/netsim/router.ml: Addr Hashtbl Packet
