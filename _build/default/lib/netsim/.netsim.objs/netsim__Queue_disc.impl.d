lib/netsim/queue_disc.ml: Byte_queue Cm_util Packet Rng
