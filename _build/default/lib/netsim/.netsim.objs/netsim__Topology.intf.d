lib/netsim/topology.mli: Cm_util Costs Engine Eventsim Host Link Rng Time
