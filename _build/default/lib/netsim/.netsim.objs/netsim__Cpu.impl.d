lib/netsim/cpu.ml: Cm_util Engine Eventsim Time
