lib/netsim/topology.ml: Array Engine Eventsim Host Link List Queue_disc Router
