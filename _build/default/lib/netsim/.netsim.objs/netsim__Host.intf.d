lib/netsim/host.mli: Addr Costs Cpu Engine Eventsim Packet
