lib/netsim/background.mli: Addr Cm_util Engine Eventsim Host Rng Time
