lib/netsim/costs.ml: Cm_util Time
