lib/netsim/link.mli: Cm_util Engine Eventsim Packet Queue_disc Rng Time
