lib/netsim/cpu.mli: Cm_util Engine Eventsim Time
