lib/netsim/costs.mli: Cm_util Time
