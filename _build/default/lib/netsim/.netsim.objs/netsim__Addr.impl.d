lib/netsim/addr.ml: Format Hashtbl Printf Stdlib
