lib/netsim/background.ml: Addr Cm_util Engine Eventsim Host Packet Rng Time
