lib/netsim/addr.mli: Format Hashtbl
