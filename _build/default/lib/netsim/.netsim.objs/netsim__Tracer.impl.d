lib/netsim/tracer.ml: Addr Array Cm_util Engine Eventsim Format Host List Packet Stdlib Time
