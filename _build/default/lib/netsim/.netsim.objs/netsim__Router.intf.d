lib/netsim/router.mli: Packet
