lib/netsim/tracer.mli: Addr Cm_util Engine Eventsim Format Host Packet Time
