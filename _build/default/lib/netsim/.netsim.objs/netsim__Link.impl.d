lib/netsim/link.ml: Cm_util Engine Eventsim Packet Queue_disc Rng Time
