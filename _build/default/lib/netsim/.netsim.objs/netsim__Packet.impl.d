lib/netsim/packet.ml: Addr Cm_util Format Stdlib Time
