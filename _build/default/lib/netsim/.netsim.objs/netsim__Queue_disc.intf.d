lib/netsim/queue_disc.mli: Cm_util Packet
