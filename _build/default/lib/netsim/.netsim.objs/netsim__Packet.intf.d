lib/netsim/packet.mli: Addr Cm_util Format Time
