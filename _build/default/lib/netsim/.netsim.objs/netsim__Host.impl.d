lib/netsim/host.ml: Addr Costs Cpu Engine Eventsim Format Hashtbl List Packet Printf
