open Cm_util
open Eventsim

type t = { mutable active : bool; mutable sent : int }

let interval ~rate_bps ~packet_bytes = Time.sec (float_of_int (packet_bytes * 8) /. rate_bps)

let emit engine host ~dst ~packet_bytes t =
  let src = Addr.endpoint ~host:(Host.id host) ~port:9 in
  let flow = Addr.flow ~src ~dst ~proto:Addr.Udp () in
  let pkt =
    Packet.make ~now:(Engine.now engine) ~flow
      ~payload_bytes:(packet_bytes - Packet.header_bytes)
      (Packet.Raw (packet_bytes - Packet.header_bytes))
  in
  t.sent <- t.sent + 1;
  Host.ip_output host pkt

let check_window ?start ?stop engine =
  let now = Engine.now engine in
  let started = match start with Some s -> now >= s | None -> true in
  let stopped = match stop with Some s -> now >= s | None -> false in
  (started, stopped)

let make_looper engine ~host ~dst ~packet_bytes ?start ?stop next_gap =
  if packet_bytes <= Packet.header_bytes then
    invalid_arg "Background: packet_bytes must exceed header size";
  let t = { active = true; sent = 0 } in
  let rec tick () =
    if t.active then begin
      let started, stopped = check_window ?start ?stop engine in
      if stopped then t.active <- false
      else begin
        if started then emit engine host ~dst ~packet_bytes t;
        ignore (Engine.schedule_after engine (next_gap ()) tick)
      end
    end
  in
  let first = match start with Some s -> Time.max 0 (Time.diff s (Engine.now engine)) | None -> 0 in
  ignore (Engine.schedule_after engine first tick);
  t

let cbr engine ~host ~dst ~rate_bps ~packet_bytes ?start ?stop () =
  let gap = interval ~rate_bps ~packet_bytes in
  make_looper engine ~host ~dst ~packet_bytes ?start ?stop (fun () -> gap)

let on_off engine ~host ~dst ~rate_bps ~packet_bytes ~mean_on ~mean_off ~rng ?start ?stop () =
  let gap = interval ~rate_bps ~packet_bytes in
  let remaining_on = ref 0 in
  let next_gap () =
    if !remaining_on > 0 then begin
      remaining_on := !remaining_on - gap;
      gap
    end
    else begin
      let on_len = Time.sec (Rng.exponential rng ~mean:(Time.to_float_s mean_on)) in
      let off_len = Time.sec (Rng.exponential rng ~mean:(Time.to_float_s mean_off)) in
      remaining_on := on_len;
      off_len + gap
    end
  in
  make_looper engine ~host ~dst ~packet_bytes ?start ?stop next_gap

let poisson engine ~host ~dst ~rate_bps ~packet_bytes ~rng ?start ?stop () =
  let mean_gap = Time.to_float_s (interval ~rate_bps ~packet_bytes) in
  let next_gap () = Time.sec (Rng.exponential rng ~mean:mean_gap) in
  make_looper engine ~host ~dst ~packet_bytes ?start ?stop next_gap

let stop t = t.active <- false
let packets_sent t = t.sent
