(** End hosts.

    A host owns a CPU, a cost profile, a default route (its access link),
    and a demultiplexer from incoming packets to bound sockets.  The IP
    output path runs registered transmit hooks before handing the packet
    to the route — this is where the CM's [cm_notify] charging attaches
    ("we modify the IP output routine", paper §2.1.3) without the network
    layer depending on the CM. *)

open Eventsim

type t
(** A host. *)

type handler = Packet.t -> unit
(** A bound socket's receive entry point. *)

val create : Engine.t -> id:int -> ?costs:Costs.t -> unit -> t
(** [create eng ~id ()] is a host with no route and no bindings.
    Default cost profile: {!Costs.zero}. *)

val id : t -> int
(** The host's address. *)

val engine : t -> Engine.t
(** The engine driving this host. *)

val cpu : t -> Cpu.t
(** The host's CPU. *)

val costs : t -> Costs.t
(** The host's cost profile. *)

val attach_route : t -> (Packet.t -> unit) -> unit
(** Set the default output (normally a {!Link.send}). *)

val add_tx_hook : t -> (Packet.t -> unit) -> unit
(** Register a hook run on every outgoing packet before transmission. *)

val add_rx_filter : t -> (Packet.t -> Packet.t option) -> unit
(** Register a filter run on every incoming packet before
    demultiplexing.  A filter may pass the packet on (possibly rewritten,
    e.g. with a protocol header stripped) or return [None] to consume it.
    Filters run in registration order. *)

val ip_output : t -> Packet.t -> unit
(** Send a packet: run transmit hooks, then the route.  Raises
    [Failure] if no route is attached. *)

val deliver : t -> Packet.t -> unit
(** Entry point for packets arriving from a link: demultiplex to the
    connected-flow handler if one matches, else to the listening
    [(proto, port)] handler, else count the packet as unmatched. *)

val bind : t -> Addr.proto -> port:int -> handler -> unit
(** Register a listening handler for a local port.  Raises
    [Invalid_argument] if the port is taken. *)

val unbind : t -> Addr.proto -> port:int -> unit
(** Remove a listening binding (no-op if absent). *)

val connect_demux : t -> Addr.flow -> handler -> unit
(** Register a handler for packets whose 5-tuple matches [flow] exactly
    (the flow is expressed in the direction of the *incoming* packets). *)

val disconnect_demux : t -> Addr.flow -> unit
(** Remove an exact-match binding (no-op if absent). *)

val alloc_port : t -> int
(** A fresh ephemeral port (≥ 32768), never reused by this host. *)

val unmatched : t -> int
(** Packets delivered to no handler. *)

val tx_packets : t -> int
(** Packets sent through {!ip_output}. *)

val tx_bytes : t -> int
(** Bytes sent through {!ip_output}. *)
