(** Unidirectional links.

    A link serializes packets at its bandwidth, holds them in a queueing
    discipline while the transmitter is busy, applies an optional random
    channel loss (the Dummynet knob used throughout the paper's testbed),
    and delivers each packet to its sink after a propagation delay.

    Bandwidth may be changed at runtime ({!set_bandwidth}): this is how the
    adaptation experiments (Figs. 8–10) emulate a wide-area path whose
    available bandwidth varies over time. *)

open Cm_util
open Eventsim

type t
(** A link. *)

type stats = {
  enqueued_pkts : int;  (** Packets accepted into the queue. *)
  delivered_pkts : int;  (** Packets handed to the sink. *)
  delivered_bytes : int;  (** Bytes handed to the sink. *)
  queue_drops : int;  (** Drops by the queueing discipline. *)
  channel_drops : int;  (** Random (Dummynet-style) losses. *)
  ecn_marks : int;  (** ECN marks applied by the discipline. *)
}
(** Cumulative counters. *)

val create :
  Engine.t ->
  bandwidth_bps:float ->
  delay:Time.span ->
  ?qdisc:Queue_disc.t ->
  ?loss_rate:float ->
  ?reorder:float * Time.span ->
  ?rng:Rng.t ->
  sink:(Packet.t -> unit) ->
  unit ->
  t
(** [create eng ~bandwidth_bps ~delay ~sink ()] is a link delivering to
    [sink].  Default discipline: 100-packet drop-tail.  [loss_rate] (with
    its [rng]) drops each packet independently with that probability before
    queueing.  [reorder = (p, extra)] delays each packet by [extra]
    additional propagation with probability [p], so later packets overtake
    it (Dummynet-style reordering). *)

val send : t -> Packet.t -> unit
(** Offer a packet to the link (the device output path). *)

val set_bandwidth : t -> float -> unit
(** Change the serialization rate; takes effect for the next packet to
    start transmission. *)

val bandwidth : t -> float
(** Current serialization rate in bits per second. *)

val delay : t -> Time.span
(** Propagation delay. *)

val set_loss_rate : t -> float -> unit
(** Change the random loss probability. *)

val qdisc : t -> Queue_disc.t
(** The attached queueing discipline. *)

val stats : t -> stats
(** Snapshot of the counters. *)

val busy : t -> bool
(** Whether a packet is currently being serialized. *)
