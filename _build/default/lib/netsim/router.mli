(** Static routers.

    Forwards packets by destination host id.  Queueing and serialization
    happen inside the outgoing {!Link}, so the router itself is just a
    routing table plus counters. *)

type t
(** A router. *)

val create : unit -> t
(** A router with an empty table. *)

val add_route : t -> dst:int -> (Packet.t -> unit) -> unit
(** [add_route r ~dst out] forwards packets addressed to host [dst] via
    [out] (normally a {!Link.send}).  Replaces any previous route. *)

val set_default : t -> (Packet.t -> unit) -> unit
(** Fallback output for destinations with no explicit route. *)

val forward : t -> Packet.t -> unit
(** Route one packet; packets with no route are counted and dropped.
    Use [forward r] as a link sink. *)

val no_route_drops : t -> int
(** Packets dropped for lack of a route. *)

val forwarded : t -> int
(** Packets successfully forwarded. *)
