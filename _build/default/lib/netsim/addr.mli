(** Addresses and flow identification.

    Hosts are identified by small integers (stand-ins for IP addresses);
    an endpoint pairs a host with a port.  The 5-tuple [flow] is what both
    the host demultiplexer and the CM's flow table key on — the paper's
    "flow parameters (addresses, ports, protocol field)". *)

type proto = Tcp | Udp
(** Transport protocol number. *)

type endpoint = { host : int; port : int }
(** Transport endpoint. *)

type flow = {
  src : endpoint;
  dst : endpoint;
  proto : proto;
  dscp : int;  (** IP differentiated-services codepoint (0 = best effort). *)
}
(** A unidirectional transport flow (sender's perspective). *)

val endpoint : host:int -> port:int -> endpoint
(** Build an endpoint. *)

val flow : ?dscp:int -> src:endpoint -> dst:endpoint -> proto:proto -> unit -> flow
(** Build a flow key ([dscp] defaults to 0; must be in [0, 63]). *)

val reverse : flow -> flow
(** Swap source and destination (the return path of a flow). *)

val equal_endpoint : endpoint -> endpoint -> bool
(** Structural equality on endpoints. *)

val equal_flow : flow -> flow -> bool
(** Structural equality on flows (including DSCP). *)

val strip_dscp : flow -> flow
(** The same flow with the DSCP zeroed — demultiplexing keys ignore the
    service class; only CM aggregation may honour it. *)

val compare_flow : flow -> flow -> int
(** Total order on flows (for use in maps/sets). *)

val pp_proto : Format.formatter -> proto -> unit
(** Render ["tcp"] or ["udp"]. *)

val pp_endpoint : Format.formatter -> endpoint -> unit
(** Render as [host:port]. *)

val pp_flow : Format.formatter -> flow -> unit
(** Render as [proto src -> dst]. *)

module Flow_table : Hashtbl.S with type key = flow
(** Hash tables keyed by flows. *)
