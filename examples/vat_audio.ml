(* vat: interactive real-time audio with preemptive dropping (§3.6).

   A 64 kbit/s audio source cannot downsample, so it polices itself to the
   CM-reported rate (dropping frames preemptively) and keeps its own short
   drop-from-head buffer to bound delay.  We squeeze the path below the
   audio rate mid-run and watch the policer shed load while delivered
   frames keep low latency.

   Run with: dune exec examples/vat_audio.exe *)

open Cm_util
open Eventsim
open Netsim

let () =
  let engine = Engine.create () in
  (* plenty of bandwidth at first, then a 32 kbit/s squeeze, then recovery *)
  let net = Topology.pipe engine ~bandwidth_bps:256e3 ~delay:(Time.ms 30) ~qdisc_limit:20 () in
  Cm_dynamics.Faults.bandwidth_steps engine net.Topology.ab
    [ (Time.sec 10., 32e3); (Time.sec 20., 256e3) ];

  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm () in

  let receiver = Cm_apps.Vat.Receiver.create net.Topology.b ~port:5006 () in
  let vat =
    Cm_apps.Vat.create lib ~host:net.Topology.a ~dst:(Addr.endpoint ~host:1 ~port:5006) ()
  in
  Cm_apps.Vat.start vat;

  let printer =
    Timer.create engine ~callback:(fun () ->
        let s = Cm_apps.Vat.stats vat in
        Format.printf
          "t=%2.0fs policer-rate=%6.1f kbit/s  in=%4d sent=%4d policer-drops=%4d buffer-drops=%3d@."
          (Time.to_float_s (Engine.now engine))
          (Cm_apps.Vat.policer_rate_bps vat /. 1e3)
          s.Cm_apps.Vat.frames_in s.Cm_apps.Vat.frames_sent s.Cm_apps.Vat.policer_drops
          s.Cm_apps.Vat.buffer_drops)
  in
  Timer.start_periodic printer (Time.sec 2.);
  Engine.run_for engine (Time.sec 30.);
  Cm_apps.Vat.stop vat;

  let delays = Cm_apps.Vat.Receiver.delay_stats receiver in
  Format.printf "received %d frames; one-way delay: %a (ms)@."
    (Cm_apps.Vat.Receiver.frames_received receiver)
    Stats.pp delays
