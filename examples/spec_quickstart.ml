(* Spec quickstart: declare a path, check it statically, run it.
   Run with: dune exec examples/spec_quickstart.exe *)
open Cm_spec

let spec =
  Spec.(
    par
      [ node "a"; node "b";
        duplex ~bw:8e6 ~lat:(Cm_util.Time.ms 20) "a" "b";
        flows ~name:"push" ~src:[ "a" ] ~dst:"b" ~app:(bulk ~bytes:262_144) () ])

let () =
  let engine = Eventsim.Engine.create () in
  let net = Build.instantiate engine (Check.elaborate_exn spec) in
  let cm = Cm.create engine ~mtu:1448 () in
  Cm.attach cm (Build.host net "a");
  let running = Launch.run net ~driver_for:(fun _ -> Some (Tcp.Conn.Cm_driven cm)) () in
  Eventsim.Engine.run_for engine (Cm_util.Time.sec 5.);
  Printf.printf "flows finished: %d/1\n" (Launch.done_count (List.hd running))
