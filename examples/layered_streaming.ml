(* Layered streaming: the paper's adaptive audio/video server (§3.4).

   A four-layer source streams over a path whose available bandwidth is
   cut and restored while it runs; the application adapts its layer using
   the CM's rate callbacks (cm_thresh + cmapp_update), entirely from user
   space through libcm.

   Run with: dune exec examples/layered_streaming.exe *)

open Cm_util
open Eventsim
open Netsim

let () =
  let engine = Engine.create () in
  let net = Topology.pipe engine ~bandwidth_bps:10e6 ~delay:(Time.ms 25) ~qdisc_limit:50 () in

  (* available bandwidth drops to 2 Mbit/s at t=8s and recovers at t=16s *)
  Cm_dynamics.Scenario.compile engine ~rng:(Rng.create ~seed:1)
    ~links:[ ("path", net.Topology.ab) ]
    (Cm_dynamics.Scenario.of_bandwidth_schedule ~name:"squeeze" ~target:"path"
       [ (Time.sec 8., 2e6); (Time.sec 16., 10e6) ]);

  let cm = Cm.create engine ~mtu:1000 () in
  Cm.attach cm net.Topology.a;
  let lib = Libcm.create net.Topology.a cm () in
  let _rx = Udp.Cc_socket.run_echo_receiver net.Topology.b ~port:5004 () in

  (* cumulative layer rates: 0.5 / 1 / 2 / 4 Mbit/s *)
  let source =
    Cm_apps.Layered.create lib ~host:net.Topology.a
      ~dst:(Addr.endpoint ~host:1 ~port:5004)
      ~layers:[| 0.5e6; 1e6; 2e6; 4e6 |]
      ~mode:(Cm_apps.Layered.Rate_callback { down = 0.85; up = 1.2 })
      ()
  in
  Cm_apps.Layered.start source;

  (* print the chosen layer once per second *)
  let printer =
    Timer.create engine ~callback:(fun () ->
        Format.printf "t=%2.0fs  layer=%d  cm-rate=%6.2f Mbit/s@."
          (Time.to_float_s (Engine.now engine))
          (Cm_apps.Layered.current_layer source)
          ((Libcm.query lib (Cm_apps.Layered.flow source)).Cm.Cm_types.rate_bps /. 1e6))
  in
  Timer.start_periodic printer (Time.sec 1.);
  Engine.run_for engine (Time.sec 24.);
  Cm_apps.Layered.stop source;
  Format.printf "sent %d packets (%d bytes)@."
    (Cm_apps.Layered.packets_sent source)
    (Cm_apps.Layered.bytes_sent source)
